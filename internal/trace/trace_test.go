package trace

import (
	"strings"
	"testing"

	"cheriabi/internal/cap"
)

func mk(n uint64) cap.Capability { return cap.Root(0x1000, n, cap.PermData) }

func TestCollectorClassification(t *testing.T) {
	c := New()
	c.DeriveStack(mk(64), 0x100)
	c.DeriveOther(mk(128), 0x104)
	c.OnCapCreate("malloc", mk(100))
	c.OnCapCreate("exec", mk(4096))
	c.OnCapCreate("glob relocs", mk(8))
	c.OnCapCreate("cap relocs", mk(8)) // folded into glob relocs
	c.OnCapCreate("syscall", mk(1<<20))
	c.OnCapCreate("kern", mk(16))
	c.OnCapCreate("signal", mk(816)) // folded into syscall
	if c.Count() != 9 {
		t.Fatalf("count = %d", c.Count())
	}
	if got := c.CDFFor(SourceGOT).Total; got != 2 {
		t.Fatalf("glob relocs total = %d", got)
	}
	if got := c.CDFFor(SourceSyscall).Total; got != 2 {
		t.Fatalf("syscall total = %d", got)
	}
	if got := c.CDFFor(SourceAll).Total; got != 9 {
		t.Fatalf("all total = %d", got)
	}
}

func TestUntaggedIgnored(t *testing.T) {
	c := New()
	c.OnCapCreate("malloc", cap.Null())
	if c.Count() != 0 {
		t.Fatal("untagged capability recorded")
	}
}

func TestCDFMonotone(t *testing.T) {
	c := New()
	for _, n := range []uint64{1, 100, 5000, 1 << 22} {
		c.OnCapCreate("malloc", mk(n))
	}
	cdf := c.CDFFor(SourceMalloc)
	for i := 1; i < len(cdf.Counts); i++ {
		if cdf.Counts[i] < cdf.Counts[i-1] {
			t.Fatal("CDF not monotone")
		}
	}
	if cdf.Counts[len(cdf.Counts)-1] != 4 {
		t.Fatalf("final count = %d", cdf.Counts[len(cdf.Counts)-1])
	}
	if cdf.Max != 1<<22 {
		t.Fatalf("max = %d", cdf.Max)
	}
}

func TestFractionBelow(t *testing.T) {
	c := New()
	c.OnCapCreate("malloc", mk(10))
	c.OnCapCreate("malloc", mk(10000))
	if f := c.FractionBelow(SourceMalloc, 100); f != 0.5 {
		t.Fatalf("fraction = %v", f)
	}
	if f := c.FractionBelow("empty", 100); f != 0 {
		t.Fatalf("empty fraction = %v", f)
	}
}

func TestSourcesSorted(t *testing.T) {
	c := New()
	c.OnCapCreate("kern", mk(1))
	c.OnCapCreate("exec", mk(1))
	s := c.Sources()
	if len(s) != 2 || s[0] != "exec" || s[1] != "kern" {
		t.Fatalf("sources = %v", s)
	}
}

func TestRenderHasHeaderAndRows(t *testing.T) {
	c := New()
	c.OnCapCreate("malloc", mk(64))
	out := Render(c, []string{SourceAll, SourceMalloc})
	if !strings.Contains(out, "malloc") || !strings.Contains(out, "4B") {
		t.Fatalf("render:\n%s", out)
	}
	lines := strings.Count(out, "\n")
	if lines != len(Figure5Sizes())+1 {
		t.Fatalf("render rows = %d", lines)
	}
}
