// Package benchjson parses `go test -bench` text output into a
// machine-readable ledger. CI pipes the push bench step through
// cmd/cheri-benchjson to publish BENCH_simulator.json, so per-push
// performance (MB/s, sim-cycles, ns/op) is diffable by tooling instead
// of buried in build logs.
package benchjson

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	// Name is the full benchmark name including sub-benchmark path and
	// the -cpu suffix if present (e.g. "BenchmarkThreadedDispatch/on-8").
	Name string `json:"name"`
	// Iterations is b.N for the reported run.
	Iterations int64 `json:"iterations"`
	// NsPerOp is the wall-clock cost per iteration.
	NsPerOp float64 `json:"ns_per_op"`
	// MBPerS is the throughput metric (go test's MB/s column, present
	// when the benchmark calls b.SetBytes). Zero when absent.
	MBPerS float64 `json:"mb_per_s,omitempty"`
	// SimCycles is the simulated-cycle custom metric emitted by the
	// ablation benchmarks (must be bit-identical across configurations).
	// Zero when absent.
	SimCycles float64 `json:"sim_cycles,omitempty"`
	// Metrics holds every remaining "<value> <unit>" pair verbatim
	// (B/op, allocs/op, and custom b.ReportMetric units).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Ledger is the top-level JSON document.
type Ledger struct {
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Parse reads `go test -bench` output and returns the parsed ledger.
// Non-benchmark lines (PASS, ok, goos headers, test chatter) are
// ignored. A line starting with "Benchmark" that fails to parse is an
// error: silently dropping a malformed result would make a perf
// regression invisible.
func Parse(r io.Reader) (*Ledger, error) {
	led := &Ledger{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// A benchmark result needs at least: name, iterations, value, unit.
		if len(fields) < 4 || len(fields)%2 != 0 {
			return nil, fmt.Errorf("benchjson: malformed benchmark line: %q", line)
		}
		b := Benchmark{Name: fields[0]}
		n, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("benchjson: bad iteration count in %q: %v", line, err)
		}
		b.Iterations = n
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchjson: bad value %q in %q: %v", fields[i], line, err)
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				b.NsPerOp = v
			case "MB/s":
				b.MBPerS = v
			case "sim-cycles":
				b.SimCycles = v
			default:
				if b.Metrics == nil {
					b.Metrics = make(map[string]float64)
				}
				b.Metrics[unit] = v
			}
		}
		led.Benchmarks = append(led.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return led, nil
}

// Write renders the ledger as indented JSON.
func (l *Ledger) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(l)
}
