// Package benchjson parses `go test -bench` text output into a
// machine-readable ledger. CI pipes the push bench step through
// cmd/cheri-benchjson to publish BENCH_simulator.json, so per-push
// performance (MB/s, sim-cycles, ns/op) is diffable by tooling instead
// of buried in build logs.
package benchjson

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	// Name is the full benchmark name including sub-benchmark path and
	// the -cpu suffix if present (e.g. "BenchmarkThreadedDispatch/on-8").
	Name string `json:"name"`
	// Iterations is b.N for the reported run.
	Iterations int64 `json:"iterations"`
	// NsPerOp is the wall-clock cost per iteration.
	NsPerOp float64 `json:"ns_per_op"`
	// MBPerS is the throughput metric (go test's MB/s column, present
	// when the benchmark calls b.SetBytes). Zero when absent.
	MBPerS float64 `json:"mb_per_s,omitempty"`
	// SimCycles is the simulated-cycle custom metric emitted by the
	// ablation benchmarks (must be bit-identical across configurations).
	// Zero when absent.
	SimCycles float64 `json:"sim_cycles,omitempty"`
	// Metrics holds every remaining "<value> <unit>" pair verbatim
	// (B/op, allocs/op, and custom b.ReportMetric units).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Ledger is the top-level JSON document.
type Ledger struct {
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Parse reads `go test -bench` output and returns the parsed ledger.
// Non-benchmark lines (PASS, ok, goos headers, test chatter) are
// ignored. A line starting with "Benchmark" that fails to parse is an
// error: silently dropping a malformed result would make a perf
// regression invisible.
func Parse(r io.Reader) (*Ledger, error) {
	led := &Ledger{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// A benchmark result needs at least: name, iterations, value, unit.
		if len(fields) < 4 || len(fields)%2 != 0 {
			return nil, fmt.Errorf("benchjson: malformed benchmark line: %q", line)
		}
		b := Benchmark{Name: fields[0]}
		n, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("benchjson: bad iteration count in %q: %v", line, err)
		}
		b.Iterations = n
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchjson: bad value %q in %q: %v", fields[i], line, err)
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				b.NsPerOp = v
			case "MB/s":
				b.MBPerS = v
			case "sim-cycles":
				b.SimCycles = v
			default:
				if b.Metrics == nil {
					b.Metrics = make(map[string]float64)
				}
				b.Metrics[unit] = v
			}
		}
		led.Benchmarks = append(led.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return led, nil
}

// Write renders the ledger as indented JSON.
func (l *Ledger) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(l)
}

// Read parses a JSON ledger previously produced by Write.
func Read(r io.Reader) (*Ledger, error) {
	led := &Ledger{}
	if err := json.NewDecoder(r).Decode(led); err != nil {
		return nil, fmt.Errorf("benchjson: reading ledger: %v", err)
	}
	return led, nil
}

// baseKey strips the trailing -<GOMAXPROCS> suffix go test appends to
// benchmark names, so ledgers recorded on hosts with different core
// counts compare by benchmark identity.
func baseKey(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// Compare checks current against baseline and returns human-readable
// regression findings (empty when clean). Two guards:
//
//   - sim-cycles must not change AT ALL on any benchmark both ledgers
//     share: simulated cycle counts are architectural results, so a
//     drift here is a correctness regression (or an intentional change
//     that must be made visible by regenerating the committed ledger in
//     the same change).
//   - MB/s on benchmarks whose name starts with mbGuardPrefix must not
//     drop more than maxDropPct below the baseline: host throughput on
//     other benchmarks is too noisy to gate on, but the headline
//     simulator throughput regressing past the tolerance fails.
//
// A baseline benchmark missing from current is reported too — a guard
// that silently stops covering a benchmark is itself a regression.
func Compare(baseline, current *Ledger, maxDropPct float64, mbGuardPrefix string) []string {
	cur := make(map[string]Benchmark, len(current.Benchmarks))
	for _, b := range current.Benchmarks {
		cur[baseKey(b.Name)] = b
	}
	var findings []string
	for _, base := range baseline.Benchmarks {
		key := baseKey(base.Name)
		got, ok := cur[key]
		if !ok {
			findings = append(findings,
				fmt.Sprintf("%s: present in baseline but missing from current run", key))
			continue
		}
		if base.SimCycles != 0 && got.SimCycles != base.SimCycles {
			findings = append(findings,
				fmt.Sprintf("%s: sim-cycles changed %v -> %v (simulated architecture must not drift)",
					key, base.SimCycles, got.SimCycles))
		}
		if mbGuardPrefix != "" && strings.HasPrefix(key, mbGuardPrefix) &&
			base.MBPerS > 0 && got.MBPerS < base.MBPerS*(1-maxDropPct/100) {
			findings = append(findings,
				fmt.Sprintf("%s: MB/s dropped %.2f -> %.2f (more than %.0f%% below baseline)",
					key, base.MBPerS, got.MBPerS, maxDropPct))
		}
	}
	return findings
}
