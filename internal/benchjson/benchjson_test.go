package benchjson

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: cheriabi
cpu: Intel(R) Xeon(R) CPU
BenchmarkSimulator 	       5	  61790230 ns/op	  47.28 MB/s
BenchmarkThreadedDispatch/on-8 	       3	  59327307 ns/op	  49.25 MB/s	  8847070 sim-cycles
BenchmarkCopyInOut/bulk 	      12	   1032100 ns/op	2901.55 MB/s	     120 B/op	       3 allocs/op
BenchmarkPollStorm/idle=4 	       3	  10000000 ns/op	      4072 sim-cycles/wake
PASS
ok  	cheriabi	12.345s
`

func TestParse(t *testing.T) {
	led, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(led.Benchmarks) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4", len(led.Benchmarks))
	}
	b := led.Benchmarks[0]
	if b.Name != "BenchmarkSimulator" || b.Iterations != 5 ||
		b.NsPerOp != 61790230 || b.MBPerS != 47.28 {
		t.Fatalf("BenchmarkSimulator parsed wrong: %+v", b)
	}
	b = led.Benchmarks[1]
	if b.Name != "BenchmarkThreadedDispatch/on-8" || b.SimCycles != 8847070 || b.MBPerS != 49.25 {
		t.Fatalf("sub-benchmark parsed wrong: %+v", b)
	}
	b = led.Benchmarks[2]
	if b.Metrics["B/op"] != 120 || b.Metrics["allocs/op"] != 3 {
		t.Fatalf("benchmem metrics parsed wrong: %+v", b)
	}
	b = led.Benchmarks[3]
	if b.Metrics["sim-cycles/wake"] != 4072 {
		t.Fatalf("custom metric parsed wrong: %+v", b)
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	for _, line := range []string{
		"BenchmarkBroken 	 notanumber 	 12 ns/op",
		"BenchmarkBroken 	 5 	 12",
		"BenchmarkBroken 	 5 	 twelve ns/op",
	} {
		if _, err := Parse(strings.NewReader(line)); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", line)
		}
	}
}

func TestWriteRoundTrips(t *testing.T) {
	led, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := led.Write(&buf); err != nil {
		t.Fatal(err)
	}
	var got Ledger
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(got.Benchmarks) != len(led.Benchmarks) {
		t.Fatalf("round trip lost benchmarks: %d != %d", len(got.Benchmarks), len(led.Benchmarks))
	}
	if got.Benchmarks[1].SimCycles != 8847070 {
		t.Fatalf("sim-cycles lost in round trip: %+v", got.Benchmarks[1])
	}
}

func TestReadRoundTrips(t *testing.T) {
	led, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := led.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Benchmarks) != len(led.Benchmarks) || got.Benchmarks[0].MBPerS != 47.28 {
		t.Fatalf("Read round trip wrong: %+v", got)
	}
	if _, err := Read(strings.NewReader("{not json")); err == nil {
		t.Fatal("Read accepted malformed JSON")
	}
}

func TestBaseKey(t *testing.T) {
	for name, want := range map[string]string{
		"BenchmarkSimulator":              "BenchmarkSimulator",
		"BenchmarkSimulator-8":            "BenchmarkSimulator",
		"BenchmarkSimulator-128":          "BenchmarkSimulator",
		"BenchmarkIndirectTransfer/on-16": "BenchmarkIndirectTransfer/on",
		"BenchmarkPollStorm/idle=4":       "BenchmarkPollStorm/idle=4",
		"BenchmarkCopyInOut/bulk-x":       "BenchmarkCopyInOut/bulk-x",
	} {
		if got := baseKey(name); got != want {
			t.Errorf("baseKey(%q) = %q, want %q", name, got, want)
		}
	}
}

func ledger(bs ...Benchmark) *Ledger { return &Ledger{Benchmarks: bs} }

func TestCompareClean(t *testing.T) {
	base := ledger(
		Benchmark{Name: "BenchmarkSimulator-8", MBPerS: 50},
		Benchmark{Name: "BenchmarkIndirectTransfer/on-8", MBPerS: 44, SimCycles: 3749010},
	)
	// Different -cpu suffix, slightly slower but within tolerance,
	// identical sim-cycles: clean.
	cur := ledger(
		Benchmark{Name: "BenchmarkSimulator-16", MBPerS: 45},
		Benchmark{Name: "BenchmarkIndirectTransfer/on-16", MBPerS: 20, SimCycles: 3749010},
	)
	if findings := Compare(base, cur, 15, "BenchmarkSimulator"); len(findings) != 0 {
		t.Fatalf("clean comparison produced findings: %v", findings)
	}
}

func TestCompareFindsRegressions(t *testing.T) {
	base := ledger(
		Benchmark{Name: "BenchmarkSimulator-8", MBPerS: 50},
		Benchmark{Name: "BenchmarkIndirectTransfer/on-8", MBPerS: 44, SimCycles: 3749010},
		Benchmark{Name: "BenchmarkSuperblocks/on-8", SimCycles: 100},
	)
	cur := ledger(
		// >15% MB/s drop on a guarded benchmark.
		Benchmark{Name: "BenchmarkSimulator-8", MBPerS: 40},
		// sim-cycles drift (guarded regardless of name prefix).
		Benchmark{Name: "BenchmarkIndirectTransfer/on-8", MBPerS: 44, SimCycles: 3749011},
		// BenchmarkSuperblocks/on missing entirely.
	)
	findings := Compare(base, cur, 15, "BenchmarkSimulator")
	if len(findings) != 3 {
		t.Fatalf("got %d findings, want 3: %v", len(findings), findings)
	}
	for i, want := range []string{"MB/s dropped", "sim-cycles changed", "missing from current"} {
		found := false
		for _, f := range findings {
			if strings.Contains(f, want) {
				found = true
			}
		}
		if !found {
			t.Errorf("finding %d: no finding mentions %q: %v", i, want, findings)
		}
	}
}
