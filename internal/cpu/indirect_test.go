package cpu

import (
	"testing"

	"cheriabi/internal/cap"
	"cheriabi/internal/isa"
	"cheriabi/internal/vm"
)

const targetVA = codeVA + vm.PageSize // first instruction of code page 1

// callLoop builds a call/return loop: page 0 counts iterations in r4 and
// CJALRs through C12 to page 1, which bumps r2 by inc and CJRs back
// through the C17 link; the loop exits after iters round trips.
func callLoop(iters, inc int32) []isa.Inst {
	prog := []isa.Inst{
		{Op: isa.ADDI, Ra: 4, Rb: 4, Imm: 1},     // 0: iteration counter
		{Op: isa.CJALR, Ra: 17, Rb: 12},          // 1: call page 1
		{Op: isa.ADDI, Ra: 5, Rb: 0, Imm: iters}, // 2
		{Op: isa.BNE, Ra: 4, Rb: 5, Imm: -3},     // 3: loop to 0
		{Op: isa.BREAK},                          // 4
	}
	prog = padTo(prog, instsPerPage)
	return append(prog,
		isa.Inst{Op: isa.ADDI, Ra: 2, Rb: 2, Imm: inc}, // 1024: callee body
		isa.Inst{Op: isa.CJR, Ra: 17},                  // 1025: return
	)
}

// endlessCallLoop is callLoop without an exit: CJALR to page 1, return,
// jump back — three retired instructions per round trip, forever.
func endlessCallLoop() []isa.Inst {
	prog := []isa.Inst{
		{Op: isa.CJALR, Ra: 17, Rb: 12}, // 0: call page 1
		{Op: isa.J, Imm: -1},            // 1: back to the call
	}
	prog = padTo(prog, instsPerPage)
	return append(prog, isa.Inst{Op: isa.CJR, Ra: 17}) // 1024: return
}

// callTarget aims C12 at the callee entry point.
func callTarget(c *CPU) {
	c.C[12] = c.Fmt.SetAddr(c.PCC, targetVA)
}

// TestIndirectCacheServesCallReturnLoop is the positive control: a
// call/return loop must be served by the indirect-transfer cache (and the
// return stack) after the first round trip, and the ablation knob must
// take the slow path with bit-identical architecture.
func TestIndirectCacheServesCallReturnLoop(t *testing.T) {
	const iters = 20
	c := newTestCPU(t)
	callTarget(c)
	load(t, c, callLoop(iters, 5))
	run(t, c)
	if got := c.X[2]; got != 5*iters {
		t.Fatalf("r2 = %d, want %d", got, 5*iters)
	}
	ds := c.DecodeStats
	if ds.IndirectHits == 0 {
		t.Fatalf("call/return loop never hit the indirect cache: %+v", ds)
	}
	// 2*iters transfers; only the first call and first return may miss.
	if ds.IndirectHits < 2*iters-2 {
		t.Fatalf("IndirectHits = %d, want at least %d: %+v", ds.IndirectHits, 2*iters-2, ds)
	}

	c2 := newTestCPU(t)
	c2.NoIndirectCache = true
	callTarget(c2)
	load(t, c2, callLoop(iters, 5))
	run(t, c2)
	if c2.DecodeStats.IndirectHits != 0 || c2.DecodeStats.IndirectMisses != 0 {
		t.Fatalf("indirect cache ran while disabled: %+v", c2.DecodeStats)
	}
	if c.X != c2.X || c.Stats != c2.Stats {
		t.Fatalf("indirect cache on/off diverged:\non  %+v\noff %+v", c.Stats, c2.Stats)
	}
}

// TestIndirectSMCReprovesEntry patches the callee body between calls: the
// cached entry's PageGen proof goes stale, and the next transfer must
// re-prove and execute the re-decoded page, never the stale block.
//
// Iteration 1 calls the original callee (r2 += 5). Iteration 2 patches
// the callee to r2 += 9 and calls again; iteration 3 calls once more. A
// stale cached target would leave r2 = 15.
func TestIndirectSMCReprovesEntry(t *testing.T) {
	patched := isa.MustEncode(isa.Inst{Op: isa.ADDI, Ra: 2, Rb: 2, Imm: 9})
	prog := []isa.Inst{
		{Op: isa.ADDI, Ra: 4, Rb: 4, Imm: 1}, // 0: iteration counter
		{Op: isa.ADDI, Ra: 5, Rb: 0, Imm: 2}, // 1
		{Op: isa.BNE, Ra: 4, Rb: 5, Imm: 6},  // 2: skip patch unless iter 2
	}
	prog = append(prog, storeWordInsts(patched, targetVA)...) // 3..7
	prog = append(prog,
		isa.Inst{Op: isa.CJALR, Ra: 17, Rb: 12},       // 8: call page 1
		isa.Inst{Op: isa.ADDI, Ra: 6, Rb: 0, Imm: 3},  // 9
		isa.Inst{Op: isa.BNE, Ra: 4, Rb: 6, Imm: -10}, // 10: loop to 0
		isa.Inst{Op: isa.BREAK},                       // 11
	)
	prog = padTo(prog, instsPerPage)
	prog = append(prog,
		isa.Inst{Op: isa.ADDI, Ra: 2, Rb: 2, Imm: 5}, // 1024: patch target
		isa.Inst{Op: isa.CJR, Ra: 17},                // 1025: return
	)

	c := newTestCPU(t)
	callTarget(c)
	load(t, c, prog)
	run(t, c)
	if got := c.X[2]; got != 5+9+9 {
		t.Fatalf("r2 = %d, want 23 (stale cached indirect target executed?)", got)
	}
	ds := c.DecodeStats
	// The post-patch call must have fallen off the hit path.
	if ds.IndirectMisses < 2 {
		t.Fatalf("patched callee was served from the cache: %+v", ds)
	}
	if ds.Decodes < 3 {
		t.Fatalf("patched callee page was not re-decoded: %+v", ds)
	}
}

// TestIndirectMprotectSeversEntry revokes exec permission on (or unmaps)
// the callee page of an established call loop: the next transfer's
// re-proof must fail, the cache slot must be severed, and the fault must
// surface exactly at the callee's first instruction — the PC Step's
// unoptimised fetch would fault at.
func TestIndirectMprotectSeversEntry(t *testing.T) {
	for _, tc := range []struct {
		name   string
		revoke func(c *CPU) error
	}{
		{"mprotect", func(c *CPU) error {
			return c.AS.Protect(targetVA, vm.PageSize, vm.ProtRead|vm.ProtWrite)
		}},
		{"unmap", func(c *CPU) error {
			return c.AS.Unmap(targetVA, vm.PageSize)
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			c := newTestCPU(t)
			callTarget(c)
			load(t, c, endlessCallLoop())
			// 101 ≡ 2 (mod 3) instructions park the resume PC on page 0's
			// J — NOT on the callee's CJR, whose fetch would fault before
			// any transfer re-proof could run.
			if tr := c.Run(101); tr != nil {
				t.Fatalf("unexpected trap while priming: %v", tr)
			}
			ds := c.DecodeStats
			if ds.IndirectHits == 0 {
				t.Fatalf("call loop did not prime the indirect cache: %+v", ds)
			}
			slot := &c.icache[indirectIdx(c.C[12])]
			if slot.page == nil {
				t.Fatal("no established cache entry for the callee")
			}
			severs := ds.IndirectSevers

			if err := tc.revoke(c); err != nil {
				t.Fatal(err)
			}
			tr := c.Run(100)
			if tr == nil || tr.Kind != TrapPageFault {
				t.Fatalf("trap = %v, want a page fault on the revoked callee page", tr)
			}
			if tr.PC != targetVA {
				t.Fatalf("fault PC = %x, want %x (first instruction of the callee)", tr.PC, targetVA)
			}
			if got := c.DecodeStats.IndirectSevers; got != severs+1 {
				t.Fatalf("IndirectSevers = %d, want %d", got, severs+1)
			}
			if slot.page != nil {
				t.Fatal("stale indirect entry survived the failed re-proof")
			}
		})
	}
}

// TestIndirectBadCalleeTrapsWithoutFill jumps through a sealed and an
// untagged capability: the transfer must trap at the CJALR itself with
// exec's exact capability fault, and the failed proof must leave no trace
// — no cache fill, no return-stack push, no link-register write.
func TestIndirectBadCalleeTrapsWithoutFill(t *testing.T) {
	sealRoot := cap.Root(1, 100, cap.PermSeal)
	for _, tc := range []struct {
		name string
		mut  func(cap.Capability) cap.Capability
	}{
		{"sealed", func(cb cap.Capability) cap.Capability {
			sealed, err := cb.Seal(sealRoot)
			if err != nil {
				t.Fatalf("sealing callee capability: %v", err)
			}
			return sealed
		}},
		{"untagged", func(cb cap.Capability) cap.Capability {
			return cb.ClearTag()
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			c := newTestCPU(t)
			callTarget(c)
			c.C[12] = tc.mut(c.C[12])
			load(t, c, []isa.Inst{
				{Op: isa.NOP}, // keeps the CJALR on the threaded path
				{Op: isa.CJALR, Ra: 17, Rb: 12},
				{Op: isa.BREAK},
			})
			tr := c.Run(100)
			if tr == nil || tr.Kind != TrapCapFault {
				t.Fatalf("trap = %v, want a capability fault", tr)
			}
			if tr.PC != codeVA+isa.InstSize {
				t.Fatalf("fault PC = %x, want %x (the CJALR itself)", tr.PC, codeVA+isa.InstSize)
			}
			if ds := c.DecodeStats; ds.IndirectMisses == 0 {
				t.Fatalf("CJALR did not reach the indirect miss path: %+v", ds)
			} else if ds.IndirectHits != 0 {
				t.Fatalf("bad callee hit the indirect cache: %+v", ds)
			}
			for i := range c.icache {
				if c.icache[i].page != nil {
					t.Fatalf("failed proof filled cache slot %d", i)
				}
			}
			if c.rsp != 0 {
				t.Fatal("failed proof pushed a return prediction")
			}
			if c.C[17].Tag() {
				t.Fatal("failed proof wrote the link register")
			}
		})
	}
}

// TestIndirectNarrowerCapabilityMisses re-runs a call through a
// differently-bounded capability to the same target address: the entry is
// keyed by the full capability value, so the narrower capability must
// re-prove from scratch rather than ride the wider capability's proof.
func TestIndirectNarrowerCapabilityMisses(t *testing.T) {
	prog := []isa.Inst{
		{Op: isa.NOP},                   // 0: keeps the CJALR on the threaded path
		{Op: isa.CJALR, Ra: 17, Rb: 12}, // 1: call page 1
		{Op: isa.BREAK},                 // 2
	}
	prog = padTo(prog, instsPerPage)
	prog = append(prog,
		isa.Inst{Op: isa.ADDI, Ra: 2, Rb: 2, Imm: 1}, // 1024
		isa.Inst{Op: isa.CJR, Ra: 17},                // 1025
	)

	c := newTestCPU(t)
	callTarget(c)
	wide := c.C[12]
	load(t, c, prog)
	run(t, c)
	slotW := &c.icache[indirectIdx(wide)]
	if slotW.page == nil || slotW.cp != wide {
		t.Fatalf("call did not fill the wide capability's entry: %+v", c.DecodeStats)
	}
	misses := c.DecodeStats.IndirectMisses

	// Same cursor, page-narrow bounds: bit-different value, own proof.
	narrow := cap.Root(targetVA, vm.PageSize, cap.PermCode)
	if !narrow.Authorizes(targetVA, isa.InstSize, cap.PermExecute) {
		t.Fatal("narrow capability does not authorize the callee fetch")
	}
	c.C[12] = narrow
	c.PC = codeVA
	c.PCC = cap.Root(codeVA, 4*vm.PageSize, cap.PermCode|cap.PermSystemRegs)
	run(t, c)
	if got := c.X[2]; got != 2 {
		t.Fatalf("r2 = %d, want 2", got)
	}
	if got := c.DecodeStats.IndirectMisses; got < misses+1 {
		t.Fatalf("narrower capability rode the wider entry's proof: misses %d, want > %d",
			got, misses)
	}
}

// TestIndirectForkInvalidatesEntries forks the address space mid-loop:
// the fork bumps the parent's generation (its writable pages went
// copy-on-write), so every cached transfer proof must fall stale — the
// next call re-proves, refills, and the loop resumes hitting.
func TestIndirectForkInvalidatesEntries(t *testing.T) {
	c := newTestCPU(t)
	callTarget(c)
	load(t, c, endlessCallLoop())
	if tr := c.Run(100); tr != nil {
		t.Fatalf("unexpected trap while priming: %v", tr)
	}
	ds := c.DecodeStats
	if ds.IndirectHits == 0 {
		t.Fatalf("call loop did not prime the indirect cache: %+v", ds)
	}
	hits, misses := ds.IndirectHits, ds.IndirectMisses

	c.AS.Fork() // parent-side generation bump is the point

	if tr := c.Run(100); tr != nil {
		t.Fatalf("unexpected trap after fork: %v", tr)
	}
	ds = c.DecodeStats
	if ds.IndirectMisses == misses {
		t.Fatalf("no transfer re-proved after the fork bumped AS.Gen: %+v", ds)
	}
	if ds.IndirectHits <= hits+1 {
		t.Fatalf("loop did not resume hitting after the refill: %+v", ds)
	}
}
