package cpu

import (
	"cheriabi/internal/cap"
	"cheriabi/internal/isa"
	"cheriabi/internal/vm"
)

// scalarMemOp is the pre-resolved description of a scalar load/store for
// the threaded engine's inline dispatch: the access size, the
// sign-extension shift (64-8*size for signed loads, 0 otherwise), and
// whether the op is a store and whether it addresses through a capability
// register (vs. DDC). A zero size marks ops that are not scalar memory
// accesses. Resolving this once at startup lets the hot loop skip both
// exec's op switch and the per-op opSize switch for the most common
// memory instructions.
type scalarMemOp struct {
	size  uint64
	shift uint
	store bool
	cheri bool
}

var scalarMemOps [isa.NumOps]scalarMemOp

// opAccessesMem marks the exec-dispatched ops that can touch memory (and
// therefore bump AS.Gen via a soft fault resolved in translate, or a
// physical page's write generation via a store). The per-instruction
// generation probe in runBlock only needs to run after these: no other
// instruction performs a translation or a physical-memory mutation, so
// after anything else the generations provably cannot have changed. The
// scalar loads/stores handled inline by runBlock are probed via their own
// path and deliberately left false here.
var opAccessesMem [isa.NumOps]bool

func init() {
	for _, op := range []isa.Op{isa.CLC, isa.CLCB, isa.CSC, isa.CSCB} {
		opAccessesMem[op] = true
	}
}

func init() {
	type def struct {
		op           isa.Op
		size         uint64
		signed       bool
		store, cheri bool
	}
	for _, d := range []def{
		{isa.LB, 1, true, false, false}, {isa.LBU, 1, false, false, false},
		{isa.LH, 2, true, false, false}, {isa.LHU, 2, false, false, false},
		{isa.LW, 4, true, false, false}, {isa.LWU, 4, false, false, false},
		{isa.LD, 8, false, false, false},
		{isa.SB, 1, false, true, false}, {isa.SH, 2, false, true, false},
		{isa.SW, 4, false, true, false}, {isa.SD, 8, false, true, false},
		{isa.CLB, 1, true, false, true}, {isa.CLBU, 1, false, false, true},
		{isa.CLH, 2, true, false, true}, {isa.CLHU, 2, false, false, true},
		{isa.CLW, 4, true, false, true}, {isa.CLWU, 4, false, false, true},
		{isa.CLD, 8, false, false, true},
		{isa.CSB, 1, false, true, true}, {isa.CSH, 2, false, true, true},
		{isa.CSW, 4, false, true, true}, {isa.CSD, 8, false, true, true},
	} {
		mo := scalarMemOp{size: d.size, store: d.store, cheri: d.cheri}
		if d.signed {
			mo.shift = uint(64 - 8*d.size)
		}
		scalarMemOps[d.op] = mo
	}
}

// Block-threaded execution engine: phase 2 of the simulator fast path,
// extended into superblocks (phase 3).
//
// With the decoded-instruction cache (decode.go), every Step still pays a
// full latch validation — an address-space compare, two generation
// compares, and a bit-for-bit PCC compare — plus the Step/fetchInst call
// overhead, per instruction. runBlock hoists that validation out of the
// loop: it proves the latch once, then executes decoded instructions
// directly from blocks, re-checking per instruction only what an
// instruction can actually change:
//
//   - PC instruction-aligned (branches within the page keep the run
//     alive; a misaligned target exits);
//   - PC in PCC bounds. The bounds are fixed for the whole run because
//     the run exits on the only instructions that replace PCC, CJR/CJALR;
//     when the whole current page lies inside them (the overwhelmingly
//     common case — PCC spans the code segment) the per-instruction
//     compare is hoisted to one whole-page check per chained segment, and
//     only a partially covered page keeps the per-PC compare. An
//     out-of-bounds PC exits to the Step slow path, which raises the
//     identical capability fault;
//   - AddressSpace.Gen and the executing page's mem.PageGen unchanged.
//     Only a memory-accessing instruction can change either (a store
//     mutates page bytes; a translation resolves soft faults), so the
//     probe runs exactly after loads, stores, and capability loads/stores
//     — after anything else the generations provably cannot have moved.
//
// Superblock chaining: when PC leaves the current page through a direct
// branch, an in-PCC indirect jump (JR/JALR), or straight-line fallthrough,
// the run no longer exits. Each decoded page carries a small direct-mapped
// set of successor links (decode.go, chainLink); the transition
// re-validates only what the page change can affect — target alignment,
// PCC bounds for the new target, and the link's (AS, AS.Gen, target
// PageGen) proof — then swaps the run's page state and continues. The
// bounds check deliberately happens BEFORE any translation: Step's slow
// path checks PCC first too, and translating first could resolve a soft
// fault (COW copy, demand-zero) that the in-order machine would never
// reach, skewing physical frames and cycle counts. A link that fails
// validation is re-proved through the same translate walk Step would
// perform (severed instead if that walk faults, leaving Step to raise the
// identical fault), so SMC, mprotect, munmap, COW, and swap semantics are
// exactly those of the unchained engine. CJR/CJALR still exit: they
// replace PCC, and the full fetchInst latch rebuild re-proves the
// tag/seal/permission checks a chain traversal never re-examines.
//
// Exit conditions, exhaustively: trap (returned to the kernel), budget
// exhausted, misaligned PC, PC out of PCC bounds, PCC replaced
// (CJR/CJALR), AS.Gen or executing PageGen changed, chain target
// unprovable (translation fault), or superblocks disabled and PC leaves
// the page.
//
// Cycle-ledger batching: the per-instruction base charges (one retired
// instruction, plus the I-cache fetch cost) accumulate in run-local
// counters and are flushed to Stats when the run ends — before any trap is
// surfaced, so the kernel and any OnTrap observer always see exact
// architectural counts. Consecutive fetches from one L1I line are batched
// the same way: only the first issues a real Hierarchy.Fetch; the rest are
// guaranteed hits (nothing but instruction fetches touches L1I state) and
// are applied as one FetchRepeats bulk update before the next real fetch
// or flush, leaving clock, LRU, and counters bit-identical to per-fetch
// issue. Op-specific extras (multi-cycle ALU ops, branch bubbles,
// data-cache costs) are charged directly by exec, exactly as on the Step
// path; the final sums are bit-identical either way. Nothing in the
// simulator reads Stats or cache state mid-run, so deferring the flushes
// cannot perturb LRU decisions or miss counts.

// runBlock executes decoded instructions from the latched page — chaining
// across pages — until an exit condition, retiring at most rem
// instructions (0 = no limit). It returns the trap that ended the run, or
// nil. If the latch does not validate, it returns immediately having
// retired nothing, and the caller falls back to Step.
func (c *CPU) runBlock(rem uint64) *Trap {
	l := &c.latch
	page := l.page
	if page == nil || c.AS != l.as || c.AS.Gen != l.asGen || c.PCC != l.pcc ||
		c.PC-l.vaPage >= vm.PageSize || c.PC%isa.InstSize != 0 ||
		c.Mem.PageGen(l.paPage) != page.gen {
		return nil
	}
	vaPage, paPage, asGen := l.vaPage, l.paPage, l.asGen
	pageBounded := c.PCC.InBounds(vaPage, vm.PageSize)
	// pc shadows c.PC for the duration of the loop so straight-line
	// retirement never touches the CPU struct; it is written back before
	// every exec call (exec reads and advances c.PC), before building a
	// trap, and at every loop exit.
	pc := c.PC
	var nInst, nCycles, nLoads, nStores, nBranches, nTaken uint64

	// Pending same-line instruction fetches (see the batching note above):
	// [lineBase, lineEnd) spans the L1I line of the last real fetch;
	// lineRepeats counts fetches from it not yet applied to the cache
	// model. The span compare keeps the per-instruction check free of
	// method calls; the line index is recomputed only at flush time.
	lineSize := c.Hier.L1I.Config().LineSize
	lineBase, lineEnd := uint64(1), uint64(0) // empty span: no line fetched yet
	var lineRepeats uint64
	flushLine := func() {
		if lineRepeats != 0 {
			nCycles += c.Hier.FetchRepeats(c.Hier.FetchLine(lineBase), lineRepeats)
			lineRepeats = 0
		}
	}
	flush := func() {
		flushLine()
		if nInst == 0 {
			return
		}
		c.Stats.Instructions += nInst
		c.Stats.Cycles += nCycles
		c.Stats.Loads += nLoads
		c.Stats.Stores += nStores
		c.Stats.Branches += nBranches
		c.Stats.Taken += nTaken
		c.DecodeStats.Hits += nInst
		c.DecodeStats.Threaded += nInst
		c.DecodeStats.Blocks++
	}
	for {
		if rem != 0 && nInst >= rem {
			break
		}
		off := pc - vaPage
		if off >= vm.PageSize {
			// PC left the page: chain to the successor block. PCC bounds
			// come first (matching Step's check order — see the package
			// comment); the link proof or a fresh translate walk covers the
			// rest. Chaining retires nothing, so the next iteration either
			// executes from the new page or exits.
			if c.NoSuperblocks || pc%isa.InstSize != 0 ||
				!c.PCC.InBounds(pc, isa.InstSize) {
				break // Step raises any fault identically
			}
			tva := pc &^ uint64(pageOffMask)
			lk := &page.links[(tva>>vm.PageShift)&(linkWays-1)]
			if lk.page == nil || lk.as != c.AS || lk.asGen != c.AS.Gen ||
				lk.vaPage != tva || c.Mem.PageGen(lk.paPage) != lk.page.gen {
				pa, pf := c.translate(pc, vm.ProtExec)
				if pf != nil {
					lk.page = nil
					c.DecodeStats.Severs++
					break // Step repeats the walk and raises the fault
				}
				tpa := pa &^ uint64(pageOffMask)
				// AS.Gen is re-read after the translate: resolving a soft
				// fault bumps it, and the link must record the generation
				// its proof holds at.
				*lk = chainLink{page: c.pageFor(tpa), as: c.AS,
					asGen: c.AS.Gen, vaPage: tva, paPage: tpa}
			}
			page, vaPage, paPage, asGen = lk.page, lk.vaPage, lk.paPage, lk.asGen
			pageBounded = c.PCC.InBounds(vaPage, vm.PageSize)
			l.page, l.vaPage, l.paPage, l.asGen = page, vaPage, paPage, asGen
			c.DecodeStats.Chains++
			continue
		}
		if off%isa.InstSize != 0 {
			break // a branch to a misaligned target
		}
		if !pageBounded && !c.PCC.InBounds(pc, isa.InstSize) {
			break // Step's slow path raises the identical bounds fault
		}
		// Identical I-cache accounting to the Step path: the fetch charge
		// subsumes the base execution cycle (an L1I hit costs 1). Same-line
		// fetches accumulate in lineRepeats and are applied in bulk.
		pa := paPage + off
		if pa >= lineBase && pa < lineEnd {
			lineRepeats++
		} else {
			flushLine()
			nCycles += c.Hier.Fetch(pa, isa.InstSize)
			lineBase = pa - pa%lineSize
			lineEnd = lineBase + lineSize
		}
		nInst++
		in := page.insts[off/isa.InstSize]
		if mo := scalarMemOps[in.Op]; mo.size != 0 {
			// Inline scalar load/store: same LoadVia/StoreVia sequence and
			// Stats updates as exec's loadInt/storeInt, minus the op-switch
			// dispatch and the per-op opSize lookup. Scalar memory ops never
			// replace PCC, so the CJR/CJALR exit check is skipped too.
			var auth *cap.Capability
			var ea uint64
			if mo.cheri {
				auth = &c.C[in.Rb]
				ea = auth.Addr() + uint64(int64(in.Imm))
			} else {
				auth = &c.DDC
				ea = c.X[in.Rb] + uint64(int64(in.Imm))
			}
			if mo.store {
				if err := c.storeViaP(auth, ea, mo.size, c.X[in.Ra]); err != nil {
					c.PC = pc
					flush()
					return c.accessTrap(in, err)
				}
				nStores++
			} else {
				v, err := c.loadViaP(auth, ea, mo.size)
				if err != nil {
					c.PC = pc
					flush()
					return c.accessTrap(in, err)
				}
				nLoads++
				if mo.shift != 0 {
					v = uint64(int64(v<<mo.shift) >> mo.shift)
				}
				c.setX(in.Ra, v)
			}
			pc += isa.InstSize
		} else {
			// Inline direct branches and jumps: the same compare, Stats
			// updates, taken-bubble charge, and PC arithmetic as exec's
			// cases, minus the call and op-switch dispatch. None of these
			// touch memory or PCC, so they skip both the generation probe
			// and the CJR/CJALR exit check.
			switch in.Op {
			case isa.BEQ, isa.BNE, isa.BLT, isa.BGE, isa.BLTU, isa.BGEU:
				nBranches++
				var taken bool
				a, b := c.X[in.Ra], c.X[in.Rb]
				switch in.Op {
				case isa.BEQ:
					taken = a == b
				case isa.BNE:
					taken = a != b
				case isa.BLT:
					taken = int64(a) < int64(b)
				case isa.BGE:
					taken = int64(a) >= int64(b)
				case isa.BLTU:
					taken = a < b
				case isa.BGEU:
					taken = a >= b
				}
				if taken {
					nTaken++
					nCycles++ // taken-branch bubble
					pc += uint64(int64(in.Imm)) * isa.InstSize
				} else {
					pc += isa.InstSize
				}
				continue
			case isa.J:
				nCycles++
				pc += uint64(int64(in.Imm)) * isa.InstSize
				continue
			case isa.JAL:
				nCycles++
				c.setX(isa.RRA, pc+isa.InstSize)
				pc += uint64(int64(in.Imm)) * isa.InstSize
				continue

			// Inline single-cycle integer ALU ops: same register reads,
			// setX writes, and PC advance as exec's cases, minus the call
			// and op-switch dispatch. None touch memory, PCC, or extra
			// cycles, so they skip the probe and exit checks like the
			// branches above.
			case isa.NOP:
				pc += isa.InstSize
				continue
			case isa.ADD:
				c.setX(in.Ra, c.X[in.Rb]+c.X[in.Rc])
				pc += isa.InstSize
				continue
			case isa.SUB:
				c.setX(in.Ra, c.X[in.Rb]-c.X[in.Rc])
				pc += isa.InstSize
				continue
			case isa.AND:
				c.setX(in.Ra, c.X[in.Rb]&c.X[in.Rc])
				pc += isa.InstSize
				continue
			case isa.OR:
				c.setX(in.Ra, c.X[in.Rb]|c.X[in.Rc])
				pc += isa.InstSize
				continue
			case isa.XOR:
				c.setX(in.Ra, c.X[in.Rb]^c.X[in.Rc])
				pc += isa.InstSize
				continue
			case isa.SLL:
				c.setX(in.Ra, c.X[in.Rb]<<(c.X[in.Rc]&63))
				pc += isa.InstSize
				continue
			case isa.SRL:
				c.setX(in.Ra, c.X[in.Rb]>>(c.X[in.Rc]&63))
				pc += isa.InstSize
				continue
			case isa.SRA:
				c.setX(in.Ra, uint64(int64(c.X[in.Rb])>>(c.X[in.Rc]&63)))
				pc += isa.InstSize
				continue
			case isa.SLT:
				c.setX(in.Ra, b2i(int64(c.X[in.Rb]) < int64(c.X[in.Rc])))
				pc += isa.InstSize
				continue
			case isa.SLTU:
				c.setX(in.Ra, b2i(c.X[in.Rb] < c.X[in.Rc]))
				pc += isa.InstSize
				continue
			case isa.ADDI:
				c.setX(in.Ra, c.X[in.Rb]+uint64(int64(in.Imm)))
				pc += isa.InstSize
				continue
			case isa.ANDI:
				c.setX(in.Ra, c.X[in.Rb]&uint64(uint32(in.Imm)&0x3FFF))
				pc += isa.InstSize
				continue
			case isa.ORI:
				c.setX(in.Ra, c.X[in.Rb]|uint64(uint32(in.Imm)&0x3FFF))
				pc += isa.InstSize
				continue
			case isa.XORI:
				c.setX(in.Ra, c.X[in.Rb]^uint64(uint32(in.Imm)&0x3FFF))
				pc += isa.InstSize
				continue
			case isa.SLTI:
				c.setX(in.Ra, b2i(int64(c.X[in.Rb]) < int64(in.Imm)))
				pc += isa.InstSize
				continue
			case isa.SLTIU:
				c.setX(in.Ra, b2i(c.X[in.Rb] < uint64(int64(in.Imm))))
				pc += isa.InstSize
				continue
			case isa.SLLI:
				c.setX(in.Ra, c.X[in.Rb]<<(uint(in.Imm)&63))
				pc += isa.InstSize
				continue
			case isa.SRLI:
				c.setX(in.Ra, c.X[in.Rb]>>(uint(in.Imm)&63))
				pc += isa.InstSize
				continue
			case isa.SRAI:
				c.setX(in.Ra, uint64(int64(c.X[in.Rb])>>(uint(in.Imm)&63)))
				pc += isa.InstSize
				continue
			case isa.LUI:
				c.setX(in.Ra, uint64(int64(in.Imm))<<14)
				pc += isa.InstSize
				continue
			}
			c.PC = pc
			if t := c.exec(in); t != nil {
				flush()
				return t
			}
			pc = c.PC
			if in.Op == isa.CJR || in.Op == isa.CJALR {
				break // PCC replaced; the Step latch revalidates it
			}
			if !opAccessesMem[in.Op] {
				continue // no memory touched: generations cannot have moved
			}
		}
		if c.AS.Gen != asGen || c.Mem.PageGen(paPage) != page.gen {
			break // a translation or the executing page's bytes changed
		}
	}
	c.PC = pc
	flush()
	return nil
}
