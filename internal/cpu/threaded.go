package cpu

import (
	"cheriabi/internal/cap"
	"cheriabi/internal/isa"
	"cheriabi/internal/vm"
)

// scalarMemOp is the pre-resolved description of a scalar load/store for
// the threaded engine's inline dispatch: the access size, the
// sign-extension shift (64-8*size for signed loads, 0 otherwise), and
// whether the op is a store and whether it addresses through a capability
// register (vs. DDC). A zero size marks ops that are not scalar memory
// accesses. Resolving this once at startup lets the hot loop skip both
// exec's op switch and the per-op opSize switch for the most common
// memory instructions.
type scalarMemOp struct {
	size  uint64
	shift uint
	store bool
	cheri bool
}

var scalarMemOps [isa.NumOps]scalarMemOp

func init() {
	type def struct {
		op           isa.Op
		size         uint64
		signed       bool
		store, cheri bool
	}
	for _, d := range []def{
		{isa.LB, 1, true, false, false}, {isa.LBU, 1, false, false, false},
		{isa.LH, 2, true, false, false}, {isa.LHU, 2, false, false, false},
		{isa.LW, 4, true, false, false}, {isa.LWU, 4, false, false, false},
		{isa.LD, 8, false, false, false},
		{isa.SB, 1, false, true, false}, {isa.SH, 2, false, true, false},
		{isa.SW, 4, false, true, false}, {isa.SD, 8, false, true, false},
		{isa.CLB, 1, true, false, true}, {isa.CLBU, 1, false, false, true},
		{isa.CLH, 2, true, false, true}, {isa.CLHU, 2, false, false, true},
		{isa.CLW, 4, true, false, true}, {isa.CLWU, 4, false, false, true},
		{isa.CLD, 8, false, false, true},
		{isa.CSB, 1, false, true, true}, {isa.CSH, 2, false, true, true},
		{isa.CSW, 4, false, true, true}, {isa.CSD, 8, false, true, true},
	} {
		mo := scalarMemOp{size: d.size, store: d.store, cheri: d.cheri}
		if d.signed {
			mo.shift = uint(64 - 8*d.size)
		}
		scalarMemOps[d.op] = mo
	}
}

// Block-threaded execution engine: phase 2 of the simulator fast path.
//
// With the decoded-instruction cache (decode.go), every Step still pays a
// full latch validation — an address-space compare, two generation
// compares, and a bit-for-bit PCC compare — plus the Step/fetchInst call
// overhead, per instruction. runBlock hoists that validation out of the
// loop: it proves the latch once, then executes straight-line runs of
// decoded instructions directly from the block, re-checking per
// instruction only what an instruction can actually change:
//
//   - PC still inside the latched page and instruction-aligned (branches
//     within the page keep the run alive; leaving the page exits);
//   - PC in PCC bounds (the bounds are fixed for the whole run because the
//     run exits on the only instructions that replace PCC, CJR/CJALR; an
//     out-of-bounds PC exits to the Step slow path, which raises the
//     identical capability fault);
//   - AddressSpace.Gen and the executing page's mem.PageGen unchanged
//     (re-checked after every retired instruction, so a store that hits
//     the executing page — self-modifying code — or a soft fault that
//     changes a translation ends the run before the next fetch).
//
// Exit conditions, exhaustively: trap (returned to the kernel), budget
// exhausted, PC leaves the latched page, misaligned PC, PC out of PCC
// bounds, PCC replaced (CJR/CJALR), AS.Gen or PageGen changed.
//
// Cycle-ledger batching: the per-instruction base charges (one retired
// instruction, plus the I-cache fetch cost) accumulate in run-local
// counters and are flushed to Stats when the run ends — before any trap is
// surfaced, so the kernel and any OnTrap observer always see exact
// architectural counts. Op-specific extras (multi-cycle ALU ops, branch
// bubbles, data-cache costs) are charged directly by exec, exactly as on
// the Step path; the final sums are bit-identical either way. Nothing in
// the simulator reads Stats mid-run: the cache hierarchy keeps its own
// access clock, so deferring the flush cannot perturb LRU state or miss
// counts.

// runBlock executes decoded instructions from the latched page until an
// exit condition, retiring at most rem instructions (0 = no limit). It
// returns the trap that ended the run, or nil. If the latch does not
// validate, it returns immediately having retired nothing, and the caller
// falls back to Step.
func (c *CPU) runBlock(rem uint64) *Trap {
	l := &c.latch
	page := l.page
	if page == nil || c.AS != l.as || c.AS.Gen != l.asGen || c.PCC != l.pcc ||
		c.PC-l.vaPage >= vm.PageSize || c.PC%isa.InstSize != 0 ||
		c.Mem.PageGen(l.paPage) != page.gen {
		return nil
	}
	vaPage, paPage, asGen := l.vaPage, l.paPage, l.asGen
	var nInst, nCycles uint64
	flush := func() {
		if nInst == 0 {
			return
		}
		c.Stats.Instructions += nInst
		c.Stats.Cycles += nCycles
		c.DecodeStats.Hits += nInst
		c.DecodeStats.Threaded += nInst
		c.DecodeStats.Blocks++
	}
	for {
		if rem != 0 && nInst >= rem {
			break
		}
		off := c.PC - vaPage
		if off >= vm.PageSize || off%isa.InstSize != 0 {
			break // left the page, or a branch to a misaligned target
		}
		if !c.PCC.InBounds(c.PC, isa.InstSize) {
			break // Step's slow path raises the identical bounds fault
		}
		// Identical I-cache access to the Step path: the fetch charge
		// subsumes the base execution cycle (an L1I hit costs 1).
		nCycles += c.Hier.Fetch(paPage+off, isa.InstSize)
		nInst++
		in := page.insts[off/isa.InstSize]
		if mo := scalarMemOps[in.Op]; mo.size != 0 {
			// Inline scalar load/store: same LoadVia/StoreVia sequence and
			// Stats updates as exec's loadInt/storeInt, minus the op-switch
			// dispatch and the per-op opSize lookup. Scalar memory ops never
			// replace PCC, so the CJR/CJALR exit check is skipped too.
			var auth cap.Capability
			var ea uint64
			if mo.cheri {
				auth = c.C[in.Rb]
				ea = auth.Addr() + uint64(int64(in.Imm))
			} else {
				auth = c.DDC
				ea = c.X[in.Rb] + uint64(int64(in.Imm))
			}
			if mo.store {
				if err := c.StoreVia(auth, ea, mo.size, c.X[in.Ra]); err != nil {
					flush()
					return c.accessTrap(in, err)
				}
				c.Stats.Stores++
			} else {
				v, err := c.LoadVia(auth, ea, mo.size)
				if err != nil {
					flush()
					return c.accessTrap(in, err)
				}
				c.Stats.Loads++
				if mo.shift != 0 {
					v = uint64(int64(v<<mo.shift) >> mo.shift)
				}
				c.setX(in.Ra, v)
			}
			c.PC += isa.InstSize
		} else {
			if t := c.exec(in); t != nil {
				flush()
				return t
			}
			if in.Op == isa.CJR || in.Op == isa.CJALR {
				break // PCC replaced; the Step latch revalidates it
			}
		}
		if c.AS.Gen != asGen || c.Mem.PageGen(paPage) != page.gen {
			break // a translation or the executing page's bytes changed
		}
	}
	flush()
	return nil
}
