package cpu

import (
	"cheriabi/internal/cap"
	"cheriabi/internal/isa"
	"cheriabi/internal/vm"
)

// scalarMemOp is the pre-resolved description of a scalar load/store for
// the threaded engine's inline dispatch: the access size and the
// sign-extension shift (64-8*size for signed loads, 0 otherwise). The
// store/cheri split is encoded in the dispatch itself — each
// authority/direction combination has its own jump-table case — so the
// table carries only what varies within a case. A zero size marks ops
// that are not scalar memory accesses. The fields are deliberately
// byte-sized: the table is indexed per retired instruction, and a
// two-byte entry loads in one half-word.
type scalarMemOp struct {
	size  uint8
	shift uint8
}

var scalarMemOps [isa.NumOps]scalarMemOp

func init() {
	type def struct {
		op     isa.Op
		size   uint64
		signed bool
	}
	for _, d := range []def{
		{isa.LB, 1, true}, {isa.LBU, 1, false},
		{isa.LH, 2, true}, {isa.LHU, 2, false},
		{isa.LW, 4, true}, {isa.LWU, 4, false},
		{isa.LD, 8, false},
		{isa.SB, 1, false}, {isa.SH, 2, false},
		{isa.SW, 4, false}, {isa.SD, 8, false},
		{isa.CLB, 1, true}, {isa.CLBU, 1, false},
		{isa.CLH, 2, true}, {isa.CLHU, 2, false},
		{isa.CLW, 4, true}, {isa.CLWU, 4, false},
		{isa.CLD, 8, false},
		{isa.CSB, 1, false}, {isa.CSH, 2, false},
		{isa.CSW, 4, false}, {isa.CSD, 8, false},
	} {
		mo := scalarMemOp{size: uint8(d.size)}
		if d.signed {
			mo.shift = uint8(64 - 8*d.size)
		}
		scalarMemOps[d.op] = mo
	}
}

// Block-threaded execution engine: phase 2 of the simulator fast path,
// extended into superblocks (phase 3).
//
// With the decoded-instruction cache (decode.go), every Step still pays a
// full latch validation — an address-space compare, two generation
// compares, and a bit-for-bit PCC compare — plus the Step/fetchInst call
// overhead, per instruction. runBlock hoists that validation out of the
// loop: it proves the latch once, then executes decoded instructions
// directly from blocks, re-checking per instruction only what an
// instruction can actually change:
//
//   - PC instruction-aligned, maintained by induction (every inline PC
//     advance is a multiple of InstSize; transfer targets and exec-set
//     PCs are checked where they are produced);
//   - PC in PCC bounds, as one subtract-and-compare against a
//     precomputed fetch window (fetchWindow above). The window is fixed
//     until PCC is replaced — which only CJR/CJALR do, and the indirect
//     path recomputes it after every predicted transfer. An
//     out-of-bounds PC exits to the Step slow path, which raises the
//     identical capability fault;
//   - AddressSpace.Gen and the executing page's mem.PageGen unchanged.
//     Only a memory-accessing instruction can change either (a store
//     mutates page bytes; a translation resolves soft faults), so the
//     probe runs exactly after loads, stores, and capability loads/stores
//     — after anything else the generations provably cannot have moved.
//
// Superblock chaining: when PC leaves the current page through a direct
// branch, an in-PCC indirect jump (JR/JALR), or straight-line fallthrough,
// the run no longer exits. Each decoded page carries a small direct-mapped
// set of successor links (decode.go, chainLink); the transition
// re-validates only what the page change can affect — target alignment,
// PCC bounds for the new target, and the link's (AS, AS.Gen, target
// PageGen) proof — then swaps the run's page state and continues. The
// bounds check deliberately happens BEFORE any translation: Step's slow
// path checks PCC first too, and translating first could resolve a soft
// fault (COW copy, demand-zero) that the in-order machine would never
// reach, skewing physical frames and cycle counts. A link that fails
// validation is re-proved through the same translate walk Step would
// perform (severed instead if that walk faults, leaving Step to raise the
// identical fault), so SMC, mprotect, munmap, COW, and swap semantics are
// exactly those of the unchained engine. CJR/CJALR still exit: they
// replace PCC, and the full fetchInst latch rebuild re-proves the
// tag/seal/permission checks a chain traversal never re-examines.
//
// Exit conditions, exhaustively: trap (returned to the kernel), budget
// exhausted, misaligned PC, PC out of PCC bounds, PCC replaced
// (CJR/CJALR), AS.Gen or executing PageGen changed, chain target
// unprovable (translation fault), or superblocks disabled and PC leaves
// the page.
//
// Cycle-ledger batching: the per-instruction base charges (one retired
// instruction, plus the I-cache fetch cost) accumulate in run-local
// counters and are flushed to Stats when the run ends — before any trap is
// surfaced, so the kernel and any OnTrap observer always see exact
// architectural counts. Consecutive fetches from one L1I line are batched
// the same way: only the first issues a real Hierarchy.Fetch; the rest are
// guaranteed hits (nothing but instruction fetches touches L1I state) and
// are applied as one FetchRepeats bulk update before the next real fetch
// or flush, leaving clock, LRU, and counters bit-identical to per-fetch
// issue. Op-specific extras (multi-cycle ALU ops, branch bubbles,
// data-cache costs) are charged directly by exec, exactly as on the Step
// path; the final sums are bit-identical either way. Nothing in the
// simulator reads Stats or cache state mid-run, so deferring the flushes
// cannot perturb LRU decisions or miss counts.

// capMem executes one capability load or store (CLC/CLCB/CSC/CSCB) for
// the threaded engine: exec's exact sequence and Stats updates, minus the
// op-switch dispatch. Kept out of line (like indirectTransfer) so its
// capability-typed locals stay out of the hot loop's register allocation.
//
//go:noinline
func (c *CPU) capMem(in isa.Inst) error {
	ea := c.C[in.Rb].Addr() + uint64(int64(in.Imm))
	if in.Op == isa.CSC || in.Op == isa.CSCB {
		if err := c.StoreCapVia(c.C[in.Rb], ea, c.C[in.Ra]); err != nil {
			return err
		}
		c.Stats.CapStores++
		return nil
	}
	v, err := c.LoadCapVia(c.C[in.Rb], ea)
	if err != nil {
		return err
	}
	c.Stats.CapLoads++
	c.setC(in.Ra, v)
	return nil
}

// fetchWindow reduces pcc's bounds to the window of PCs from which a
// one-instruction fetch stays in bounds, as a base and a length: pc is in
// bounds iff pc-lo < span, a single subtract-and-compare per retired
// instruction in place of InBounds' three (the tag, seal, and permission
// halves of the execute proof are covered by the latch's bit-for-bit PCC
// compare, exactly as for the per-instruction InBounds this replaces).
func fetchWindow(pcc cap.Capability) (lo, span uint64) {
	lo = pcc.Base()
	if l := pcc.Len(); l >= isa.InstSize {
		span = l - isa.InstSize + 1
	}
	return
}

// runBlock executes decoded instructions from the latched page — chaining
// across pages — until an exit condition, retiring at most rem
// instructions (0 = no limit). It returns the trap that ended the run, or
// nil. If the latch does not validate, it returns immediately having
// retired nothing, and the caller falls back to Step.
func (c *CPU) runBlock(rem uint64) *Trap {
	l := &c.latch
	page := l.page
	if page == nil || c.AS != l.as || c.AS.Gen != l.asGen || c.PCC != l.pcc ||
		c.PC-l.vaPage >= vm.PageSize || c.PC%isa.InstSize != 0 ||
		c.Mem.PageGen(l.paPage) != page.gen {
		return nil
	}
	vaPage, paPage, asGen := l.vaPage, l.paPage, l.asGen
	fetchLo, fetchSpan := fetchWindow(c.PCC)
	// Hot-probe pointers hoisted out of the loop: the executing page's
	// write-generation counter (re-aimed on every page swap) and the
	// address space's. c.AS cannot change inside a run — nothing the run
	// dispatches switches address spaces; a context switch happens in the
	// kernel, between runs — so the pointer stays aimed at the live
	// counter even as translations bump it.
	genPtr := c.Mem.PageGenPtr(paPage)
	asGenPtr := &c.AS.Gen
	// The retirement budget as a simple limit: comparing against ^0 for
	// "unlimited" keeps the per-instruction check to one compare.
	limit := rem
	if limit == 0 {
		limit = ^uint64(0)
	}
	// pc shadows c.PC for the duration of the loop so straight-line
	// retirement never touches the CPU struct; it is written back before
	// every exec call (exec reads and advances c.PC), before building a
	// trap, and at every loop exit.
	pc := c.PC
	var nInst, nCycles, nLoads, nStores, nBranches, nTaken uint64

	// Pending same-line instruction fetches (see the batching note above):
	// [lineBase, lineEnd) spans the L1I line of the last real fetch;
	// lineRepeats counts fetches from it not yet applied to the cache
	// model. The span compare keeps the per-instruction check free of
	// method calls; the line index is recomputed only at flush time.
	lineSize := c.Hier.L1I.Config().LineSize
	linePow2 := lineSize&(lineSize-1) == 0    // mask vs. modulo at line turnover
	lineBase, lineEnd := uint64(1), uint64(0) // empty span: no line fetched yet
	var lineRepeats uint64
	flushLine := func() {
		if lineRepeats != 0 {
			nCycles += c.Hier.FetchRepeats(c.Hier.FetchLine(lineBase), lineRepeats)
			lineRepeats = 0
		}
	}
	flush := func() {
		flushLine()
		if nInst == 0 {
			return
		}
		c.Stats.Instructions += nInst
		c.Stats.Cycles += nCycles
		c.Stats.Loads += nLoads
		c.Stats.Stores += nStores
		c.Stats.Branches += nBranches
		c.Stats.Taken += nTaken
		c.DecodeStats.Hits += nInst
		c.DecodeStats.Threaded += nInst
		c.DecodeStats.Blocks++
	}
run:
	for {
		if nInst >= limit {
			break
		}
		off := pc - vaPage
		if off >= vm.PageSize {
			// PC left the page: chain to the successor block. PCC bounds
			// come first (matching Step's check order — see the package
			// comment); the link proof or a fresh translate walk covers the
			// rest. Chaining retires nothing, so the next iteration either
			// executes from the new page or exits.
			if c.NoSuperblocks || pc%isa.InstSize != 0 ||
				!c.PCC.InBounds(pc, isa.InstSize) {
				break // Step raises any fault identically
			}
			tva := pc &^ uint64(pageOffMask)
			lk := &page.links[(tva>>vm.PageShift)&(linkWays-1)]
			if lk.page == nil || lk.as != c.AS || lk.asGen != c.AS.Gen ||
				lk.vaPage != tva || c.Mem.PageGen(lk.paPage) != lk.page.gen {
				pa, pf := c.translate(pc, vm.ProtExec)
				if pf != nil {
					lk.page = nil
					c.DecodeStats.Severs++
					break // Step repeats the walk and raises the fault
				}
				tpa := pa &^ uint64(pageOffMask)
				// AS.Gen is re-read after the translate: resolving a soft
				// fault bumps it, and the link must record the generation
				// its proof holds at.
				*lk = chainLink{page: c.pageFor(tpa), as: c.AS,
					asGen: c.AS.Gen, vaPage: tva, paPage: tpa}
			}
			page, vaPage, paPage, asGen = lk.page, lk.vaPage, lk.paPage, lk.asGen
			genPtr = c.Mem.PageGenPtr(paPage)
			l.page, l.vaPage, l.paPage, l.asGen = page, vaPage, paPage, asGen
			c.DecodeStats.Chains++
			continue
		}
		// pc is instruction-aligned here by induction: the latch head check
		// proves it at entry, every inline advance is a multiple of
		// InstSize, transfer targets are checked where they are installed
		// (chain and indirect paths), and an exec-set PC is re-checked at
		// the exec call site below.
		if pc-fetchLo >= fetchSpan {
			break // Step's slow path raises the identical bounds fault
		}
		// Identical I-cache accounting to the Step path: the fetch charge
		// subsumes the base execution cycle (an L1I hit costs 1). Same-line
		// fetches accumulate in lineRepeats and are applied in bulk.
		pa := paPage + off
		if pa >= lineBase && pa < lineEnd {
			lineRepeats++
		} else {
			flushLine()
			nCycles += c.Hier.Fetch(pa, isa.InstSize)
			if linePow2 {
				lineBase = pa &^ (lineSize - 1)
			} else {
				lineBase = pa - pa%lineSize // variable-divisor fallback
			}
			lineEnd = lineBase + lineSize
		}
		nInst++
		in := page.insts[off/isa.InstSize]
		// One jump-table dispatch for every instruction class: scalar and
		// capability memory ops fall OUT of the switch to the generation
		// probe below; everything else continues (or exits) directly,
		// since nothing but a memory op can move the generations.
		switch in.Op {
		// Inline scalar loads/stores: same LoadVia/StoreVia sequence and
		// Stats updates as exec's loadInt/storeInt, minus the per-op
		// opSize lookup. Scalar memory ops never replace PCC, so the
		// CJR/CJALR exit check is skipped too. The four authority/direction
		// combinations get their own jump-table entries: the outer switch
		// already resolved in.Op, so re-deriving "cheri?" and "store?" from
		// table flags would re-branch on data the dispatch has settled.
		case isa.LB, isa.LBU, isa.LH, isa.LHU, isa.LW, isa.LWU, isa.LD:
			mo := scalarMemOps[in.Op]
			v, err := c.loadViaP(&c.DDC, c.X[in.Rb]+uint64(int64(in.Imm)), uint64(mo.size))
			if err != nil {
				c.PC = pc
				flush()
				return c.accessTrap(in, err)
			}
			nLoads++
			if mo.shift != 0 {
				v = uint64(int64(v<<mo.shift) >> mo.shift)
			}
			c.setX(in.Ra, v)
			pc += isa.InstSize

		case isa.CLB, isa.CLBU, isa.CLH, isa.CLHU, isa.CLW, isa.CLWU, isa.CLD:
			mo := scalarMemOps[in.Op]
			auth := &c.C[in.Rb]
			v, err := c.loadViaP(auth, auth.Addr()+uint64(int64(in.Imm)), uint64(mo.size))
			if err != nil {
				c.PC = pc
				flush()
				return c.accessTrap(in, err)
			}
			nLoads++
			if mo.shift != 0 {
				v = uint64(int64(v<<mo.shift) >> mo.shift)
			}
			c.setX(in.Ra, v)
			pc += isa.InstSize

		case isa.SB, isa.SH, isa.SW, isa.SD:
			mo := scalarMemOps[in.Op]
			if err := c.storeViaP(&c.DDC, c.X[in.Rb]+uint64(int64(in.Imm)), uint64(mo.size), c.X[in.Ra]); err != nil {
				c.PC = pc
				flush()
				return c.accessTrap(in, err)
			}
			nStores++
			pc += isa.InstSize

		case isa.CSB, isa.CSH, isa.CSW, isa.CSD:
			mo := scalarMemOps[in.Op]
			auth := &c.C[in.Rb]
			if err := c.storeViaP(auth, auth.Addr()+uint64(int64(in.Imm)), uint64(mo.size), c.X[in.Ra]); err != nil {
				c.PC = pc
				flush()
				return c.accessTrap(in, err)
			}
			nStores++
			pc += isa.InstSize

		case isa.CLC, isa.CLCB, isa.CSC, isa.CSCB:
			// Capability loads/stores — the only ops outside the scalar
			// table that can touch memory (and therefore bump AS.Gen via a
			// soft fault resolved in translate, or a page's write
			// generation via a store): exec's sequence via capMem, minus
			// the dispatch. Like the scalar memops above they advance PC
			// by one instruction and fall through to the generation probe.
			if err := c.capMem(in); err != nil {
				c.PC = pc
				flush()
				return c.accessTrap(in, err)
			}
			pc += isa.InstSize

		// Inline direct branches and jumps: the same compare, Stats
		// updates, taken-bubble charge, and PC arithmetic as exec's
		// cases, minus the call dispatch. None of these touch memory or
		// PCC, so they skip both the generation probe and the CJR/CJALR
		// exit check.
		case isa.BEQ:
			nBranches++
			if c.X[in.Ra] == c.X[in.Rb] {
				nTaken++
				nCycles++ // taken-branch bubble
				pc += uint64(int64(in.Imm)) * isa.InstSize
			} else {
				pc += isa.InstSize
			}
			continue
		case isa.BNE:
			nBranches++
			if c.X[in.Ra] != c.X[in.Rb] {
				nTaken++
				nCycles++
				pc += uint64(int64(in.Imm)) * isa.InstSize
			} else {
				pc += isa.InstSize
			}
			continue
		case isa.BLT:
			nBranches++
			if int64(c.X[in.Ra]) < int64(c.X[in.Rb]) {
				nTaken++
				nCycles++
				pc += uint64(int64(in.Imm)) * isa.InstSize
			} else {
				pc += isa.InstSize
			}
			continue
		case isa.BGE:
			nBranches++
			if int64(c.X[in.Ra]) >= int64(c.X[in.Rb]) {
				nTaken++
				nCycles++
				pc += uint64(int64(in.Imm)) * isa.InstSize
			} else {
				pc += isa.InstSize
			}
			continue
		case isa.BLTU:
			nBranches++
			if c.X[in.Ra] < c.X[in.Rb] {
				nTaken++
				nCycles++
				pc += uint64(int64(in.Imm)) * isa.InstSize
			} else {
				pc += isa.InstSize
			}
			continue
		case isa.BGEU:
			nBranches++
			if c.X[in.Ra] >= c.X[in.Rb] {
				nTaken++
				nCycles++
				pc += uint64(int64(in.Imm)) * isa.InstSize
			} else {
				pc += isa.InstSize
			}
			continue
		case isa.J:
			nCycles++
			pc += uint64(int64(in.Imm)) * isa.InstSize
			continue
		case isa.JAL:
			nCycles++
			c.setX(isa.RRA, pc+isa.InstSize)
			pc += uint64(int64(in.Imm)) * isa.InstSize
			continue

		// Inline single-cycle integer ALU ops: same register reads,
		// setX writes, and PC advance as exec's cases, minus the call
		// and op-switch dispatch. None touch memory, PCC, or extra
		// cycles, so they skip the probe and exit checks like the
		// branches above.
		case isa.NOP:
			pc += isa.InstSize
			continue
		case isa.ADD:
			c.setX(in.Ra, c.X[in.Rb]+c.X[in.Rc])
			pc += isa.InstSize
			continue
		case isa.SUB:
			c.setX(in.Ra, c.X[in.Rb]-c.X[in.Rc])
			pc += isa.InstSize
			continue
		case isa.AND:
			c.setX(in.Ra, c.X[in.Rb]&c.X[in.Rc])
			pc += isa.InstSize
			continue
		case isa.OR:
			c.setX(in.Ra, c.X[in.Rb]|c.X[in.Rc])
			pc += isa.InstSize
			continue
		case isa.XOR:
			c.setX(in.Ra, c.X[in.Rb]^c.X[in.Rc])
			pc += isa.InstSize
			continue
		case isa.SLL:
			c.setX(in.Ra, c.X[in.Rb]<<(c.X[in.Rc]&63))
			pc += isa.InstSize
			continue
		case isa.SRL:
			c.setX(in.Ra, c.X[in.Rb]>>(c.X[in.Rc]&63))
			pc += isa.InstSize
			continue
		case isa.SRA:
			c.setX(in.Ra, uint64(int64(c.X[in.Rb])>>(c.X[in.Rc]&63)))
			pc += isa.InstSize
			continue
		case isa.SLT:
			c.setX(in.Ra, b2i(int64(c.X[in.Rb]) < int64(c.X[in.Rc])))
			pc += isa.InstSize
			continue
		case isa.SLTU:
			c.setX(in.Ra, b2i(c.X[in.Rb] < c.X[in.Rc]))
			pc += isa.InstSize
			continue
		case isa.ADDI:
			c.setX(in.Ra, c.X[in.Rb]+uint64(int64(in.Imm)))
			pc += isa.InstSize
			continue
		case isa.ANDI:
			c.setX(in.Ra, c.X[in.Rb]&uint64(uint32(in.Imm)&0x3FFF))
			pc += isa.InstSize
			continue
		case isa.ORI:
			c.setX(in.Ra, c.X[in.Rb]|uint64(uint32(in.Imm)&0x3FFF))
			pc += isa.InstSize
			continue
		case isa.XORI:
			c.setX(in.Ra, c.X[in.Rb]^uint64(uint32(in.Imm)&0x3FFF))
			pc += isa.InstSize
			continue
		case isa.SLTI:
			c.setX(in.Ra, b2i(int64(c.X[in.Rb]) < int64(in.Imm)))
			pc += isa.InstSize
			continue
		case isa.SLTIU:
			c.setX(in.Ra, b2i(c.X[in.Rb] < uint64(int64(in.Imm))))
			pc += isa.InstSize
			continue
		case isa.SLLI:
			c.setX(in.Ra, c.X[in.Rb]<<(uint(in.Imm)&63))
			pc += isa.InstSize
			continue
		case isa.SRLI:
			c.setX(in.Ra, c.X[in.Rb]>>(uint(in.Imm)&63))
			pc += isa.InstSize
			continue
		case isa.SRAI:
			c.setX(in.Ra, uint64(int64(c.X[in.Rb])>>(uint(in.Imm)&63)))
			pc += isa.InstSize
			continue
		case isa.LUI:
			c.setX(in.Ra, uint64(int64(in.Imm))<<14)
			pc += isa.InstSize
			continue
		case isa.NOR:
			c.setX(in.Ra, ^(c.X[in.Rb] | c.X[in.Rc]))
			pc += isa.InstSize
			continue

		// Multi-cycle integer ALU ops: exec's cases with the extra cycles
		// charged to the run-local ledger instead of Stats directly — the
		// flush applies the identical sum. Like the single-cycle ops they
		// touch neither memory nor PCC.
		case isa.MUL:
			nCycles += 2
			c.setX(in.Ra, c.X[in.Rb]*c.X[in.Rc])
			pc += isa.InstSize
			continue
		case isa.MULH:
			nCycles += 2
			hi, _ := mul128(c.X[in.Rb], c.X[in.Rc])
			c.setX(in.Ra, hi)
			pc += isa.InstSize
			continue
		case isa.DIV:
			nCycles += 15
			c.setX(in.Ra, udiv(true, c.X[in.Rb], c.X[in.Rc], false))
			pc += isa.InstSize
			continue
		case isa.DIVU:
			nCycles += 15
			c.setX(in.Ra, udiv(false, c.X[in.Rb], c.X[in.Rc], false))
			pc += isa.InstSize
			continue
		case isa.REM:
			nCycles += 15
			c.setX(in.Ra, udiv(true, c.X[in.Rb], c.X[in.Rc], true))
			pc += isa.InstSize
			continue
		case isa.REMU:
			nCycles += 15
			c.setX(in.Ra, udiv(false, c.X[in.Rb], c.X[in.Rc], true))
			pc += isa.InstSize
			continue

		// Indirect transfers: the one exit superblock chaining left
		// behind. indirectTransfer (indirect.go) serves the transfer
		// from the target cache or the return stack when its cached
		// proof still stands, re-proves and fills on a miss, and
		// reports whether the run can continue. The body lives out of
		// line deliberately: its capability-typed locals are big
		// enough to wreck register allocation for the whole loop if
		// inlined here.
		case isa.CJR, isa.CJALR:
			if c.NoIndirectCache {
				c.PC = pc
				if t := c.exec(in); t != nil {
					flush()
					return t
				}
				pc = c.PC
				break run // PCC replaced; the Step latch rebuild re-proves it
			}
			rs := runState{pc: pc, page: page, vaPage: vaPage,
				paPage: paPage, asGen: asGen}
			inRun, err := c.indirectTransfer(in, &rs, nInst < limit)
			if err != nil {
				// The capability check failed: identical trap to exec's
				// CJR/CJALR cases, at the transfer's own PC.
				c.PC = pc
				flush()
				return c.capTrap(in, err)
			}
			nCycles++ // exec's Cycles++ for the retired transfer
			pc = rs.pc
			l.pcc = c.PCC
			if !inRun {
				break run // Step takes over at the target
			}
			page, vaPage, paPage, asGen = rs.page, rs.vaPage, rs.paPage, rs.asGen
			fetchLo, fetchSpan = fetchWindow(c.PCC)
			genPtr = c.Mem.PageGenPtr(paPage)
			l.page, l.vaPage, l.paPage, l.asGen = page, vaPage, paPage, asGen
			continue

		default:
			c.PC = pc
			if t := c.exec(in); t != nil {
				flush()
				return t
			}
			pc = c.PC
			if pc%isa.InstSize != 0 {
				break run // exec set a misaligned PC; only it can (see above)
			}
			// Everything dispatched through exec is memory-free (the
			// capability memops took the capMem case above), so the
			// generations provably cannot have moved.
			continue
		}
		if *asGenPtr != asGen || *genPtr != page.gen {
			break // a translation or the executing page's bytes changed
		}
	}
	c.PC = pc
	flush()
	return nil
}
