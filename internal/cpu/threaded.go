package cpu

import (
	"cheriabi/internal/isa"
	"cheriabi/internal/vm"
)

// Block-threaded execution engine: phase 2 of the simulator fast path.
//
// With the decoded-instruction cache (decode.go), every Step still pays a
// full latch validation — an address-space compare, two generation
// compares, and a bit-for-bit PCC compare — plus the Step/fetchInst call
// overhead, per instruction. runBlock hoists that validation out of the
// loop: it proves the latch once, then executes straight-line runs of
// decoded instructions directly from the block, re-checking per
// instruction only what an instruction can actually change:
//
//   - PC still inside the latched page and instruction-aligned (branches
//     within the page keep the run alive; leaving the page exits);
//   - PC in PCC bounds (the bounds are fixed for the whole run because the
//     run exits on the only instructions that replace PCC, CJR/CJALR; an
//     out-of-bounds PC exits to the Step slow path, which raises the
//     identical capability fault);
//   - AddressSpace.Gen and the executing page's mem.PageGen unchanged
//     (re-checked after every retired instruction, so a store that hits
//     the executing page — self-modifying code — or a soft fault that
//     changes a translation ends the run before the next fetch).
//
// Exit conditions, exhaustively: trap (returned to the kernel), budget
// exhausted, PC leaves the latched page, misaligned PC, PC out of PCC
// bounds, PCC replaced (CJR/CJALR), AS.Gen or PageGen changed.
//
// Cycle-ledger batching: the per-instruction base charges (one retired
// instruction, plus the I-cache fetch cost) accumulate in run-local
// counters and are flushed to Stats when the run ends — before any trap is
// surfaced, so the kernel and any OnTrap observer always see exact
// architectural counts. Op-specific extras (multi-cycle ALU ops, branch
// bubbles, data-cache costs) are charged directly by exec, exactly as on
// the Step path; the final sums are bit-identical either way. Nothing in
// the simulator reads Stats mid-run: the cache hierarchy keeps its own
// access clock, so deferring the flush cannot perturb LRU state or miss
// counts.

// runBlock executes decoded instructions from the latched page until an
// exit condition, retiring at most rem instructions (0 = no limit). It
// returns the trap that ended the run, or nil. If the latch does not
// validate, it returns immediately having retired nothing, and the caller
// falls back to Step.
func (c *CPU) runBlock(rem uint64) *Trap {
	l := &c.latch
	page := l.page
	if page == nil || c.AS != l.as || c.AS.Gen != l.asGen || c.PCC != l.pcc ||
		c.PC-l.vaPage >= vm.PageSize || c.PC%isa.InstSize != 0 ||
		c.Mem.PageGen(l.paPage) != page.gen {
		return nil
	}
	vaPage, paPage, asGen := l.vaPage, l.paPage, l.asGen
	var nInst, nCycles uint64
	flush := func() {
		if nInst == 0 {
			return
		}
		c.Stats.Instructions += nInst
		c.Stats.Cycles += nCycles
		c.DecodeStats.Hits += nInst
		c.DecodeStats.Threaded += nInst
		c.DecodeStats.Blocks++
	}
	for {
		if rem != 0 && nInst >= rem {
			break
		}
		off := c.PC - vaPage
		if off >= vm.PageSize || off%isa.InstSize != 0 {
			break // left the page, or a branch to a misaligned target
		}
		if !c.PCC.InBounds(c.PC, isa.InstSize) {
			break // Step's slow path raises the identical bounds fault
		}
		// Identical I-cache access to the Step path: the fetch charge
		// subsumes the base execution cycle (an L1I hit costs 1).
		nCycles += c.Hier.Fetch(paPage+off, isa.InstSize)
		nInst++
		in := page.insts[off/isa.InstSize]
		if t := c.exec(in); t != nil {
			flush()
			return t
		}
		if in.Op == isa.CJR || in.Op == isa.CJALR {
			break // PCC replaced; the Step latch revalidates it
		}
		if c.AS.Gen != asGen || c.Mem.PageGen(paPage) != page.gen {
			break // a translation or the executing page's bytes changed
		}
	}
	flush()
	return nil
}
