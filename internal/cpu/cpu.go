// Package cpu implements the simulated processor: an in-order,
// single-issue 64-bit core with the CHERI capability extensions, a
// MIPS-flavoured integer ISA, precise capability exceptions, and a
// deterministic cycle model driven by the cache hierarchy ("The pipeline
// is in-order and single-issue, roughly similar to the ARM7TDMI").
package cpu

import (
	"fmt"

	"cheriabi/internal/cache"
	"cheriabi/internal/cap"
	"cheriabi/internal/isa"
	"cheriabi/internal/mem"
	"cheriabi/internal/vm"
)

// TrapKind classifies why execution stopped.
type TrapKind int

// Trap kinds.
const (
	TrapSyscall TrapKind = iota
	TrapBreak
	TrapNCall
	TrapCapFault
	TrapPageFault
	TrapReserved
	TrapAlignment
)

func (k TrapKind) String() string {
	switch k {
	case TrapSyscall:
		return "syscall"
	case TrapBreak:
		return "break"
	case TrapNCall:
		return "ncall"
	case TrapCapFault:
		return "capability fault"
	case TrapPageFault:
		return "page fault"
	case TrapReserved:
		return "reserved instruction"
	case TrapAlignment:
		return "alignment"
	}
	return fmt.Sprintf("TrapKind(%d)", int(k))
}

// Trap describes a transfer of control to the kernel.
type Trap struct {
	Kind  TrapKind
	PC    uint64
	Inst  isa.Inst
	NCall int           // native call id for TrapNCall
	Cap   *cap.Fault    // for TrapCapFault
	Page  *vm.PageFault // for TrapPageFault
}

func (t *Trap) Error() string {
	switch t.Kind {
	case TrapCapFault:
		return fmt.Sprintf("trap at pc=0x%x (%v): %v", t.PC, t.Inst, t.Cap)
	case TrapPageFault:
		return fmt.Sprintf("trap at pc=0x%x (%v): %v", t.PC, t.Inst, t.Page)
	default:
		return fmt.Sprintf("trap at pc=0x%x (%v): %v", t.PC, t.Inst, t.Kind)
	}
}

// Stats counts architectural events.
type Stats struct {
	Instructions uint64
	Cycles       uint64
	Loads        uint64
	Stores       uint64
	CapLoads     uint64
	CapStores    uint64
	Branches     uint64
	Taken        uint64
	Syscalls     uint64
}

// CapTracer observes capability derivations for the Figure 5 analysis.
// The CPU reports bounds-restricting derivations; run-time components
// (kernel, rtld, malloc) report their own creations with richer labels.
type CapTracer interface {
	// DeriveStack is called when compiler-generated code derives a bounded
	// capability from the stack capability.
	DeriveStack(c cap.Capability, pc uint64)
	// DeriveOther is called for all other bounds-setting derivations in
	// user code.
	DeriveOther(c cap.Capability, pc uint64)
}

// CPU is one simulated hardware thread.
type CPU struct {
	X   [isa.NumRegs]uint64
	C   [isa.NumRegs]cap.Capability
	PC  uint64
	PCC cap.Capability // bounds/permissions for instruction fetch
	DDC cap.Capability // authority for legacy loads/stores

	AS     *vm.AddressSpace
	Mem    *mem.Physical
	Hier   *cache.Hierarchy
	Fmt    cap.Format
	Tracer CapTracer

	// OnTrap observes every trap Run surfaces, in order. The differential
	// determinism suite uses it to prove the decoded-instruction cache
	// preserves trap sequences exactly.
	OnTrap func(*Trap)

	// NoDecodeCache disables the decoded-instruction cache and its fetch
	// fast path; every Step then performs the full check/translate/decode
	// sequence. Behaviour is identical either way (the differential tests
	// enforce this); the knob exists for ablation and as a safety hatch.
	NoDecodeCache bool

	// NoThreadedDispatch disables the block-threaded execution engine
	// (threaded.go), which executes straight-line runs of decoded
	// instructions without returning to the Step loop. Behaviour is
	// identical either way; the knob exists for ablation and as a safety
	// hatch. Threaded dispatch also requires the decode cache, so setting
	// NoDecodeCache disables it implicitly.
	NoThreadedDispatch bool

	// NoSuperblocks disables superblock chaining: the threaded engine then
	// exits at every page boundary instead of following direct branches and
	// fallthrough block-to-block (threaded.go). Behaviour is identical
	// either way; the knob exists for ablation and as a safety hatch.
	// Chaining also requires threaded dispatch, so either knob above
	// disables it implicitly.
	NoSuperblocks bool

	// NoIndirectCache disables the indirect-transfer target cache and the
	// return-prediction stack (indirect.go): CJR/CJALR then exit the
	// threaded engine and re-prove through the Step latch rebuild, as
	// before. Behaviour is identical either way; the knob exists for
	// ablation and as a safety hatch. The cache is only consulted inside
	// the threaded engine, so either knob above disables it implicitly.
	NoIndirectCache bool

	Stats Stats

	// DecodeStats counts decode-cache events (non-architectural).
	DecodeStats DecodeStats

	// Data micro-TLB (see translate): a small direct-mapped cache of
	// per-page translations, keyed on the address space and its mutation
	// generation. This is a simulator fast path, not an architectural
	// structure; it never changes behaviour because every event that could
	// change a translation bumps vm.AddressSpace.Gen.
	tlb [dtlbSize]tlbEntry

	// Decoded-instruction cache (see decode.go): per-physical-page decoded
	// blocks plus the fast-path latch for the page PC is executing from,
	// fronted by a small direct-mapped block index so the hot path
	// (superblock chaining, latch refills) skips the map lookup.
	decoded  map[uint64]*instPage
	latch    fetchLatch
	blockIdx [blockIdxSize]blockIdxEnt

	// Indirect-transfer prediction (see indirect.go): the direct-mapped
	// target cache of validated CJR/CJALR transfers, and the return stack
	// of link capabilities CJALR wrote (rsp counts pushes; the stack wraps,
	// so the live top is rstack[(rsp-1)%retStackSize]).
	icache [indirectSize]indirectEnt
	rstack [retStackSize]indirectEnt
	rsp    int

	// Data-page frames (see access.go): one-entry L0 caches in front of
	// the micro-TLB and mem's Load/Store for scalar loads (rframe) and
	// stores (wframe), holding the translated page's backing arrays.
	rframe dataFrame
	wframe dataFrame
}

// blockIdxSize is the number of direct-mapped block-index entries.
const blockIdxSize = 64

type blockIdxEnt struct {
	paPage uint64
	page   *instPage
}

// dtlbSize is the number of direct-mapped micro-TLB entries (per-page,
// shared by fetch, read, and write accesses).
const dtlbSize = 64

type tlbEntry struct {
	as   *vm.AddressSpace
	gen  uint64
	vpn  uint64
	base uint64  // frame base physical address
	prot vm.Prot // access kinds proven against Translate at this gen
}

// translate resolves va with the micro-TLB fast path. An entry is valid
// only for the access kinds it has been proven for: a page first touched
// by a read must still take the full Translate walk on its first write so
// that copy-on-write resolution (and the protection check) happens exactly
// as without the TLB. Soft faults resolved inside Translate bump
// AddressSpace.Gen, which invalidates every cached entry at once.
func (c *CPU) translate(va uint64, access vm.Prot) (uint64, *vm.PageFault) {
	vpn := va >> vm.PageShift
	e := &c.tlb[vpn&(dtlbSize-1)]
	if e.as == c.AS && e.gen == c.AS.Gen && e.vpn == vpn && e.prot&access == access {
		return e.base + va%vm.PageSize, nil
	}
	pa, pf := c.AS.Translate(va, access)
	if pf != nil {
		return 0, pf
	}
	prot := access
	if e.as == c.AS && e.gen == c.AS.Gen && e.vpn == vpn {
		// Same page, same generation: earlier proofs still hold; widen.
		prot |= e.prot
	}
	*e = tlbEntry{as: c.AS, gen: c.AS.Gen, vpn: vpn, base: pa &^ (vm.PageSize - 1), prot: prot}
	return pa, nil
}

// TranslateData resolves a data access through the micro-TLB on behalf of
// the uaccess subsystem, which performs kernel- and runtime-initiated
// bulk copies with the same translation discipline as guest accesses.
func (c *CPU) TranslateData(va uint64, access vm.Prot) (uint64, *vm.PageFault) {
	return c.translate(va, access)
}

// New returns a CPU bound to the given memory system.
func New(m *mem.Physical, h *cache.Hierarchy, f cap.Format) *CPU {
	c := &CPU{Mem: m, Hier: h, Fmt: f}
	for i := range c.C {
		c.C[i] = cap.Null()
	}
	c.PCC = cap.Null()
	c.DDC = cap.Null()
	return c
}

// setX writes an integer register, keeping r0 hardwired to zero.
func (c *CPU) setX(r uint8, v uint64) {
	if r != 0 {
		c.X[r] = v
	}
}

// setC writes a capability register, keeping c0 hardwired to NULL.
func (c *CPU) setC(r uint8, v cap.Capability) {
	if r != 0 {
		c.C[r] = v
	}
}

// ReadCap returns capability register r (NULL for c0).
func (c *CPU) ReadCap(r uint8) cap.Capability { return c.C[r] }

// WriteCap sets capability register r, honouring the hardwired NULL.
func (c *CPU) WriteCap(r uint8, v cap.Capability) { c.setC(r, v) }

func (c *CPU) trap(kind TrapKind, in isa.Inst) *Trap {
	return &Trap{Kind: kind, PC: c.PC, Inst: in}
}

func (c *CPU) capTrap(in isa.Inst, err error) *Trap {
	if f, ok := err.(*cap.Fault); ok {
		return &Trap{Kind: TrapCapFault, PC: c.PC, Inst: in, Cap: f}
	}
	panic(fmt.Sprintf("cpu: non-capability error %v", err))
}

// Run executes until a trap occurs or max instructions retire (0 = no
// limit). It returns the trap, or nil if the instruction budget expired.
//
// When the decoded-instruction cache and threaded dispatch are enabled,
// Run alternates between the block-threaded engine (runBlock, which
// executes straight-line runs of decoded instructions) and single Steps
// (which handle everything the block engine exits for: page crossings,
// PCC changes, invalidations, misaligned PCs, and cold pages). The two
// interleavings retire the same instructions in the same order and charge
// the same cycles; the differential determinism suite enforces this.
func (c *CPU) Run(max uint64) *Trap {
	start := c.Stats.Instructions
	threaded := !c.NoDecodeCache && !c.NoThreadedDispatch
	for {
		done := c.Stats.Instructions - start
		if max != 0 && done >= max {
			return nil
		}
		if threaded {
			var rem uint64
			if max != 0 {
				rem = max - done
			}
			if t := c.runBlock(rem); t != nil {
				if c.OnTrap != nil {
					c.OnTrap(t)
				}
				return t
			}
			if max != 0 && c.Stats.Instructions-start >= max {
				return nil
			}
		}
		if t := c.Step(); t != nil {
			if c.OnTrap != nil {
				c.OnTrap(t)
			}
			return t
		}
	}
}

// Step executes one instruction. On a trap, PC still addresses the
// trapping instruction; the kernel advances it after handling syscalls,
// breaks, and native calls.
func (c *CPU) Step() *Trap {
	// Instruction fetch through PCC and the I-cache (fast path: decode.go).
	in, tr := c.fetchInst()
	if tr != nil {
		return tr
	}

	c.Stats.Instructions++
	c.Stats.Cycles++
	return c.exec(in)
}

// exec executes one decoded instruction at c.PC and advances PC. The
// caller has already performed (or proven unnecessary) the fetch checks
// and charged the fetch cycle plus the base execution cycle; exec charges
// only op-specific extras (multi-cycle ALU ops, branch bubbles, data-cache
// access costs). On a trap, PC still addresses the trapping instruction.
func (c *CPU) exec(in isa.Inst) *Trap {
	next := c.PC + isa.InstSize

	switch in.Op {
	case isa.NOP:

	// ---- integer ALU ----
	case isa.ADD:
		c.setX(in.Ra, c.X[in.Rb]+c.X[in.Rc])
	case isa.SUB:
		c.setX(in.Ra, c.X[in.Rb]-c.X[in.Rc])
	case isa.MUL:
		c.Stats.Cycles += 2
		c.setX(in.Ra, c.X[in.Rb]*c.X[in.Rc])
	case isa.MULH:
		c.Stats.Cycles += 2
		hi, _ := mul128(c.X[in.Rb], c.X[in.Rc])
		c.setX(in.Ra, hi)
	case isa.DIV:
		c.Stats.Cycles += 15
		c.setX(in.Ra, udiv(true, c.X[in.Rb], c.X[in.Rc], false))
	case isa.DIVU:
		c.Stats.Cycles += 15
		c.setX(in.Ra, udiv(false, c.X[in.Rb], c.X[in.Rc], false))
	case isa.REM:
		c.Stats.Cycles += 15
		c.setX(in.Ra, udiv(true, c.X[in.Rb], c.X[in.Rc], true))
	case isa.REMU:
		c.Stats.Cycles += 15
		c.setX(in.Ra, udiv(false, c.X[in.Rb], c.X[in.Rc], true))
	case isa.AND:
		c.setX(in.Ra, c.X[in.Rb]&c.X[in.Rc])
	case isa.OR:
		c.setX(in.Ra, c.X[in.Rb]|c.X[in.Rc])
	case isa.XOR:
		c.setX(in.Ra, c.X[in.Rb]^c.X[in.Rc])
	case isa.NOR:
		c.setX(in.Ra, ^(c.X[in.Rb] | c.X[in.Rc]))
	case isa.SLL:
		c.setX(in.Ra, c.X[in.Rb]<<(c.X[in.Rc]&63))
	case isa.SRL:
		c.setX(in.Ra, c.X[in.Rb]>>(c.X[in.Rc]&63))
	case isa.SRA:
		c.setX(in.Ra, uint64(int64(c.X[in.Rb])>>(c.X[in.Rc]&63)))
	case isa.SLT:
		c.setX(in.Ra, b2i(int64(c.X[in.Rb]) < int64(c.X[in.Rc])))
	case isa.SLTU:
		c.setX(in.Ra, b2i(c.X[in.Rb] < c.X[in.Rc]))
	case isa.SEXTB:
		c.setX(in.Ra, uint64(int64(int8(c.X[in.Rb]))))
	case isa.SEXTH:
		c.setX(in.Ra, uint64(int64(int16(c.X[in.Rb]))))
	case isa.SEXTW:
		c.setX(in.Ra, uint64(int64(int32(c.X[in.Rb]))))

	case isa.ADDI:
		c.setX(in.Ra, c.X[in.Rb]+uint64(int64(in.Imm)))
	case isa.ANDI:
		c.setX(in.Ra, c.X[in.Rb]&uint64(uint32(in.Imm)&0x3FFF))
	case isa.ORI:
		c.setX(in.Ra, c.X[in.Rb]|uint64(uint32(in.Imm)&0x3FFF))
	case isa.XORI:
		c.setX(in.Ra, c.X[in.Rb]^uint64(uint32(in.Imm)&0x3FFF))
	case isa.SLTI:
		c.setX(in.Ra, b2i(int64(c.X[in.Rb]) < int64(in.Imm)))
	case isa.SLTIU:
		c.setX(in.Ra, b2i(c.X[in.Rb] < uint64(int64(in.Imm))))
	case isa.SLLI:
		c.setX(in.Ra, c.X[in.Rb]<<(uint(in.Imm)&63))
	case isa.SRLI:
		c.setX(in.Ra, c.X[in.Rb]>>(uint(in.Imm)&63))
	case isa.SRAI:
		c.setX(in.Ra, uint64(int64(c.X[in.Rb])>>(uint(in.Imm)&63)))
	case isa.LUI:
		c.setX(in.Ra, uint64(int64(in.Imm))<<14)

	// ---- control flow ----
	case isa.BEQ, isa.BNE, isa.BLT, isa.BGE, isa.BLTU, isa.BGEU:
		c.Stats.Branches++
		var taken bool
		a, b := c.X[in.Ra], c.X[in.Rb]
		switch in.Op {
		case isa.BEQ:
			taken = a == b
		case isa.BNE:
			taken = a != b
		case isa.BLT:
			taken = int64(a) < int64(b)
		case isa.BGE:
			taken = int64(a) >= int64(b)
		case isa.BLTU:
			taken = a < b
		case isa.BGEU:
			taken = a >= b
		}
		if taken {
			c.Stats.Taken++
			c.Stats.Cycles++ // taken-branch bubble
			next = c.PC + uint64(int64(in.Imm))*isa.InstSize
		}
	case isa.CBTS, isa.CBTU:
		c.Stats.Branches++
		taken := c.C[in.Ra].Tag() == (in.Op == isa.CBTS)
		if taken {
			c.Stats.Taken++
			c.Stats.Cycles++
			next = c.PC + uint64(int64(in.Imm))*isa.InstSize
		}
	case isa.J:
		c.Stats.Cycles++
		next = c.PC + uint64(int64(in.Imm))*isa.InstSize
	case isa.JAL:
		c.Stats.Cycles++
		c.setX(isa.RRA, c.PC+isa.InstSize)
		next = c.PC + uint64(int64(in.Imm))*isa.InstSize
	case isa.JR:
		c.Stats.Cycles++
		next = c.X[in.Ra]
	case isa.JALR:
		c.Stats.Cycles++
		c.setX(in.Ra, c.PC+isa.InstSize)
		next = c.X[in.Rb]
	case isa.CJR:
		cb := c.C[in.Ra]
		if err := cb.CheckDeref(cb.Addr(), isa.InstSize, cap.PermExecute); err != nil {
			return c.capTrap(in, err)
		}
		c.Stats.Cycles++
		c.PCC = cb
		next = cb.Addr()
	case isa.CJALR:
		cb := c.C[in.Rb]
		if err := cb.CheckDeref(cb.Addr(), isa.InstSize, cap.PermExecute); err != nil {
			return c.capTrap(in, err)
		}
		c.Stats.Cycles++
		c.setC(in.Ra, c.Fmt.SetAddr(c.PCC, c.PC+isa.InstSize))
		c.PCC = cb
		next = cb.Addr()
	case isa.CJAL:
		c.Stats.Cycles++
		c.setC(isa.CRA, c.Fmt.SetAddr(c.PCC, c.PC+isa.InstSize))
		next = c.PC + uint64(int64(in.Imm))*isa.InstSize

	// ---- traps ----
	case isa.SYSCALL:
		c.Stats.Syscalls++
		return c.trap(TrapSyscall, in)
	case isa.BREAK:
		return c.trap(TrapBreak, in)
	case isa.NCALL:
		t := c.trap(TrapNCall, in)
		t.NCall = int(in.Imm)
		return t

	// ---- legacy memory (through DDC) ----
	case isa.LB, isa.LBU, isa.LH, isa.LHU, isa.LW, isa.LWU, isa.LD:
		ea := c.X[in.Rb] + uint64(int64(in.Imm))
		v, t := c.loadInt(in, c.DDC, ea)
		if t != nil {
			return t
		}
		c.setX(in.Ra, v)
	case isa.SB, isa.SH, isa.SW, isa.SD:
		ea := c.X[in.Rb] + uint64(int64(in.Imm))
		if t := c.storeInt(in, c.DDC, ea, c.X[in.Ra]); t != nil {
			return t
		}

	// ---- capability-relative memory ----
	case isa.CLB, isa.CLBU, isa.CLH, isa.CLHU, isa.CLW, isa.CLWU, isa.CLD:
		ea := c.C[in.Rb].Addr() + uint64(int64(in.Imm))
		v, t := c.loadInt(in, c.C[in.Rb], ea)
		if t != nil {
			return t
		}
		c.setX(in.Ra, v)
	case isa.CSB, isa.CSH, isa.CSW, isa.CSD:
		ea := c.C[in.Rb].Addr() + uint64(int64(in.Imm))
		if t := c.storeInt(in, c.C[in.Rb], ea, c.X[in.Ra]); t != nil {
			return t
		}
	case isa.CLC, isa.CLCB:
		ea := c.C[in.Rb].Addr() + uint64(int64(in.Imm))
		v, err := c.LoadCapVia(c.C[in.Rb], ea)
		if err != nil {
			return c.accessTrap(in, err)
		}
		c.Stats.CapLoads++
		c.setC(in.Ra, v)
	case isa.CSC, isa.CSCB:
		ea := c.C[in.Rb].Addr() + uint64(int64(in.Imm))
		if err := c.StoreCapVia(c.C[in.Rb], ea, c.C[in.Ra]); err != nil {
			return c.accessTrap(in, err)
		}
		c.Stats.CapStores++

	// ---- capability manipulation ----
	case isa.CMOVE:
		c.setC(in.Ra, c.C[in.Rb])
	case isa.CINCOFF:
		c.setC(in.Ra, c.Fmt.IncAddr(c.C[in.Rb], int64(c.X[in.Rc])))
	case isa.CINCOFFI:
		c.setC(in.Ra, c.Fmt.IncAddr(c.C[in.Rb], int64(in.Imm)))
	case isa.CSETADDR:
		c.setC(in.Ra, c.Fmt.SetAddr(c.C[in.Rb], c.X[in.Rc]))
	case isa.CGETADDR:
		c.setX(in.Ra, c.C[in.Rb].Addr())
	case isa.CSETBNDS, isa.CSETBNDSI, isa.CSETBNDSE:
		cb := c.C[in.Rb]
		length := c.X[in.Rc]
		if in.Op == isa.CSETBNDSI {
			length = uint64(int64(in.Imm))
		}
		var nc cap.Capability
		var err error
		if in.Op == isa.CSETBNDSE {
			nc, err = c.Fmt.SetBoundsExact(cb, cb.Addr(), length)
		} else {
			nc, err = c.Fmt.SetBounds(cb, cb.Addr(), length)
		}
		if err != nil {
			return c.capTrap(in, err)
		}
		if c.Tracer != nil {
			// A derivation is stack-sourced when its authority still
			// carries the stack capability's bounds (address-of-local
			// sequences offset the cursor before restricting bounds).
			stack := c.C[isa.CSP]
			if in.Rb == isa.CSP || in.Rb == isa.CFP ||
				(stack.Tag() && cb.Base() == stack.Base() && cb.Top() == stack.Top()) {
				c.Tracer.DeriveStack(nc, c.PC)
			} else {
				c.Tracer.DeriveOther(nc, c.PC)
			}
		}
		c.setC(in.Ra, nc)
	case isa.CANDPERM:
		c.setC(in.Ra, c.C[in.Rb].AndPerms(cap.Perm(c.X[in.Rc])))
	case isa.CCLRTAG:
		c.setC(in.Ra, c.C[in.Rb].ClearTag())
	case isa.CGETTAG:
		c.setX(in.Ra, b2i(c.C[in.Rb].Tag()))
	case isa.CGETBASE:
		c.setX(in.Ra, c.C[in.Rb].Base())
	case isa.CGETLEN:
		c.setX(in.Ra, c.C[in.Rb].Len())
	case isa.CGETPERM:
		c.setX(in.Ra, uint64(c.C[in.Rb].Perms()))
	case isa.CGETOFF:
		c.setX(in.Ra, c.C[in.Rb].Offset())
	case isa.CGETTYPE:
		c.setX(in.Ra, uint64(c.C[in.Rb].OType()))
	case isa.CSEAL:
		nc, err := c.C[in.Rb].Seal(c.C[in.Rc])
		if err != nil {
			return c.capTrap(in, err)
		}
		c.setC(in.Ra, nc)
	case isa.CUNSEAL:
		nc, err := c.C[in.Rb].Unseal(c.C[in.Rc])
		if err != nil {
			return c.capTrap(in, err)
		}
		c.setC(in.Ra, nc)
	case isa.CFROMPTR:
		if c.X[in.Rc] == 0 {
			c.setC(in.Ra, cap.Null())
		} else {
			c.setC(in.Ra, c.Fmt.SetAddr(c.C[in.Rb], c.C[in.Rb].Base()+c.X[in.Rc]))
		}
	case isa.CTOPTR:
		cb, ct := c.C[in.Rb], c.C[in.Rc]
		if !cb.Tag() {
			c.setX(in.Ra, 0)
		} else {
			c.setX(in.Ra, cb.Addr()-ct.Base())
		}
	case isa.CSUB:
		c.setX(in.Ra, c.C[in.Rb].Addr()-c.C[in.Rc].Addr())
	case isa.CRRL:
		c.setX(in.Ra, c.Fmt.RepresentableLength(c.X[in.Rb]))
	case isa.CRAM:
		c.setX(in.Ra, c.Fmt.RepresentableAlignmentMask(c.X[in.Rb]))
	case isa.CEXEQ:
		c.setX(in.Ra, b2i(c.C[in.Rb].Equal(c.C[in.Rc])))
	case isa.CGETPCC:
		c.setC(in.Ra, c.Fmt.SetAddr(c.PCC, c.PC))
	case isa.CRDDDC:
		c.setC(in.Ra, c.DDC)
	case isa.CWRDDC:
		if !c.PCC.HasPerm(cap.PermSystemRegs) {
			return c.capTrap(in, &cap.Fault{Cause: cap.FaultPermSystemRegs, Cap: c.PCC})
		}
		c.DDC = c.C[in.Ra]

	default:
		return c.trap(TrapReserved, in)
	}

	c.PC = next
	return nil
}

func b2i(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func udiv(signed bool, a, b uint64, rem bool) uint64 {
	if b == 0 {
		return 0 // MIPS-style: division by zero is UNPREDICTABLE; we define 0
	}
	if signed {
		if rem {
			return uint64(int64(a) % int64(b))
		}
		return uint64(int64(a) / int64(b))
	}
	if rem {
		return a % b
	}
	return a / b
}

func mul128(a, b uint64) (hi, lo uint64) {
	const mask = 0xFFFFFFFF
	al, ah := a&mask, a>>32
	bl, bh := b&mask, b>>32
	t := al * bl
	lo = t & mask
	carry := t >> 32
	t = ah*bl + carry
	t2 := al*bh + t&mask
	lo |= t2 << 32
	hi = ah*bh + t>>32 + t2>>32
	return hi, lo
}
