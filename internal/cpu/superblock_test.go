package cpu

import (
	"testing"

	"cheriabi/internal/isa"
	"cheriabi/internal/vm"
)

// instsPerPage is how many instruction slots one page holds.
const instsPerPage = int(vm.PageSize / isa.InstSize)

// padTo appends NOPs until the program is n instructions long.
func padTo(prog []isa.Inst, n int) []isa.Inst {
	for len(prog) < n {
		prog = append(prog, isa.Inst{Op: isa.NOP})
	}
	return prog
}

// TestSuperblockChainsAcrossPages is the positive control: straight-line
// code walking off the end of a page must chain into the next page's
// block without returning to Step, and retire with the same architecture
// as the unchained engine.
func TestSuperblockChainsAcrossPages(t *testing.T) {
	prog := make([]isa.Inst, 0, instsPerPage+1)
	for i := 0; i < instsPerPage; i++ {
		prog = append(prog, isa.Inst{Op: isa.ADDI, Ra: 2, Rb: 2, Imm: 1})
	}
	prog = append(prog, isa.Inst{Op: isa.BREAK})

	c := newTestCPU(t)
	load(t, c, prog)
	run(t, c)
	if got := c.X[2]; got != uint64(instsPerPage) {
		t.Fatalf("r2 = %d, want %d", got, instsPerPage)
	}
	if c.DecodeStats.Chains == 0 {
		t.Fatal("fallthrough across the page boundary did not chain")
	}

	// The ablation knob must take the same path Step would: no chaining,
	// identical architecture.
	c2 := newTestCPU(t)
	c2.NoSuperblocks = true
	load(t, c2, prog)
	run(t, c2)
	if c2.DecodeStats.Chains != 0 {
		t.Fatalf("chained with superblocks disabled: %+v", c2.DecodeStats)
	}
	if c.X[2] != c2.X[2] || c.Stats != c2.Stats {
		t.Fatalf("superblocks on/off diverged: on %+v, off %+v", c.Stats, c2.Stats)
	}
}

// TestSuperblockSMCReprovesLink stores into a chained successor page
// between traversals of the chain: the link's generation proof goes
// stale, and the next traversal must re-prove it against the re-decoded
// page rather than execute stale decoded instructions.
//
// Iteration 1 skips the patch and executes the original target (r2 += 5).
// Iteration 2 patches the target to r2 += 9 from the predecessor page,
// then falls through the (now stale) link. Iteration 3 takes the
// re-proved link once more. A stale link would leave r2 = 15.
func TestSuperblockSMCReprovesLink(t *testing.T) {
	const (
		targetVA = codeVA + vm.PageSize // first instruction of page 1
	)
	patched := isa.MustEncode(isa.Inst{Op: isa.ADDI, Ra: 2, Rb: 2, Imm: 9})

	prog := []isa.Inst{
		{Op: isa.ADDI, Ra: 4, Rb: 4, Imm: 1}, // 0: iteration counter
		{Op: isa.ADDI, Ra: 5, Rb: 0, Imm: 2}, // 1
		{Op: isa.BNE, Ra: 4, Rb: 5, Imm: 6},  // 2: skip patch unless iter 2
	}
	prog = append(prog, storeWordInsts(patched, targetVA)...) // 3..7
	prog = padTo(prog, instsPerPage)                          // fallthrough
	prog = append(prog,
		isa.Inst{Op: isa.ADDI, Ra: 2, Rb: 2, Imm: 5},    // 1024: patch target
		isa.Inst{Op: isa.ADDI, Ra: 6, Rb: 0, Imm: 3},    // 1025
		isa.Inst{Op: isa.BNE, Ra: 4, Rb: 6, Imm: -1026}, // 1026: loop to 0
		isa.Inst{Op: isa.BREAK},                         // 1027
	)

	c := newTestCPU(t)
	load(t, c, prog)
	run(t, c)
	if got := c.X[2]; got != 5+9+9 {
		t.Fatalf("r2 = %d, want 23 (stale chained block executed?)", got)
	}
	ds := c.DecodeStats
	if ds.Chains < 4 {
		t.Fatalf("expected cross-page chaining in both directions, got %+v", ds)
	}
	if ds.Decodes < 3 {
		t.Fatalf("patched successor page was not re-decoded: %+v", ds)
	}
}

// crossPageLoop builds an endless two-page loop with a fixed iteration
// length of instsPerPage+2 retired instructions: page 0 counts in r2 and
// falls through; page 1 counts in r3 and jumps back.
func crossPageLoop() []isa.Inst {
	prog := []isa.Inst{{Op: isa.ADDI, Ra: 2, Rb: 2, Imm: 1}}
	prog = padTo(prog, instsPerPage)
	return append(prog,
		isa.Inst{Op: isa.ADDI, Ra: 3, Rb: 3, Imm: 1},
		isa.Inst{Op: isa.J, Imm: -(int32(instsPerPage) + 1)},
	)
}

// chainLinkFor digs the predecessor page's chain link to tva out of the
// decoded-block cache.
func chainLinkFor(t *testing.T, c *CPU, fromVA, tva uint64) *chainLink {
	t.Helper()
	pa, pf := c.AS.Translate(fromVA, vm.ProtExec)
	if pf != nil {
		t.Fatalf("translate %x: %v", fromVA, pf)
	}
	p := c.decoded[pa&^uint64(pageOffMask)]
	if p == nil {
		t.Fatalf("no decoded block for va %x", fromVA)
	}
	return &p.links[(tva>>vm.PageShift)&(linkWays-1)]
}

// TestSuperblockMprotectSeversLink drops exec permission on (or unmaps)
// the successor page of an established chain while the PC is mid-way
// through the predecessor: the next traversal's re-proof must fail, the
// link must be severed, and the fault must surface exactly at the first
// instruction of the revoked page.
func TestSuperblockMprotectSeversLink(t *testing.T) {
	iter := uint64(instsPerPage + 2)
	for _, tc := range []struct {
		name   string
		revoke func(c *CPU) error
	}{
		{"mprotect", func(c *CPU) error {
			return c.AS.Protect(codeVA+vm.PageSize, vm.PageSize, vm.ProtRead|vm.ProtWrite)
		}},
		{"unmap", func(c *CPU) error {
			return c.AS.Unmap(codeVA+vm.PageSize, vm.PageSize)
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			c := newTestCPU(t)
			load(t, c, crossPageLoop())

			// Three laps establish the links; 100 extra instructions park
			// the PC mid-way through page 0.
			if tr := c.Run(3*iter + 100); tr != nil {
				t.Fatalf("unexpected trap while priming: %v", tr)
			}
			if c.DecodeStats.Chains < 6 {
				t.Fatalf("loop did not chain: %+v", c.DecodeStats)
			}
			if lk := chainLinkFor(t, c, codeVA, codeVA+vm.PageSize); lk.page == nil {
				t.Fatal("no established link for the successor page")
			}
			severs := c.DecodeStats.Severs

			if err := tc.revoke(c); err != nil {
				t.Fatal(err)
			}
			tr := c.Run(10 * iter)
			if tr == nil || tr.Kind != TrapPageFault {
				t.Fatalf("trap = %v, want a page fault on the revoked page", tr)
			}
			if tr.PC != codeVA+vm.PageSize {
				t.Fatalf("fault PC = %x, want %x (first instruction of the revoked page)",
					tr.PC, codeVA+vm.PageSize)
			}
			if got := c.DecodeStats.Severs; got != severs+1 {
				t.Fatalf("Severs = %d, want %d", got, severs+1)
			}
			if lk := chainLinkFor(t, c, codeVA, codeVA+vm.PageSize); lk.page != nil {
				t.Fatal("stale link survived the failed re-proof")
			}
		})
	}
}

// TestSuperblockCJRLandsOnPatchedChainTarget patches a chained successor
// page and then enters it through CJALR instead of the chain: the Step
// fetch latch must re-prove and re-decode the page exactly like a chain
// traversal would, never serving the stale block the link still points
// at.
func TestSuperblockCJRLandsOnPatchedChainTarget(t *testing.T) {
	const targetVA = codeVA + vm.PageSize
	patched := isa.MustEncode(isa.Inst{Op: isa.ADDI, Ra: 2, Rb: 2, Imm: 9})

	prog := []isa.Inst{
		{Op: isa.ADDI, Ra: 4, Rb: 4, Imm: 1}, // 0: iteration counter
		{Op: isa.ADDI, Ra: 5, Rb: 0, Imm: 2}, // 1
		{Op: isa.BNE, Ra: 4, Rb: 5, Imm: 8},  // 2: skip patch+call unless iter 2
	}
	prog = append(prog, storeWordInsts(patched, targetVA)...) // 3..7
	prog = append(prog,
		isa.Inst{Op: isa.CJALR, Ra: 17, Rb: 12}, // 8: jump to the patched target
		isa.Inst{Op: isa.BREAK},                 // 9: unreachable
	)
	prog = padTo(prog, instsPerPage) // 10..1023: fallthrough on iter 1
	prog = append(prog,
		isa.Inst{Op: isa.ADDI, Ra: 2, Rb: 2, Imm: 5},    // 1024: patch target
		isa.Inst{Op: isa.BNE, Ra: 4, Rb: 5, Imm: -1025}, // 1025: loop unless iter 2
		isa.Inst{Op: isa.BREAK},                         // 1026
	)

	c := newTestCPU(t)
	c.C[12] = c.Fmt.SetAddr(c.PCC, targetVA)
	load(t, c, prog)
	run(t, c)
	if got := c.X[2]; got != 5+9 {
		t.Fatalf("r2 = %d, want 14 (CJALR landed on a stale chained block?)", got)
	}
	if c.DecodeStats.Chains == 0 {
		t.Fatalf("iteration 1 never chained: %+v", c.DecodeStats)
	}
	if c.DecodeStats.Decodes < 3 {
		t.Fatalf("CJALR target page was not re-decoded after the patch: %+v", c.DecodeStats)
	}
}
