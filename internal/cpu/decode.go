package cpu

import (
	"encoding/binary"

	"cheriabi/internal/cap"
	"cheriabi/internal/isa"
	"cheriabi/internal/mem"
	"cheriabi/internal/vm"
)

// The decoded-instruction cache removes the three per-instruction fetch
// costs that dominate simulator time — the PCC dereference check, the
// virtual-to-physical walk, and isa.Decode — without changing anything a
// guest can observe. On first execution of a page the whole page is
// decoded into a block keyed by its physical page number; Step consults
// the block directly while a set of latch conditions prove that the slow
// path would have produced the same result:
//
//   - the PCC register is bit-identical to the one the latch was set
//     under, so the (already passed) tag/seal/permission checks still
//     hold and only the bounds compare depends on PC;
//   - the address space and its mutation generation are unchanged, so the
//     cached translation is the one Translate would return (the same
//     discipline as the micro-TLB, which bumps vm.AddressSpace.Gen on
//     every map, unmap, protect, demand-zero, COW, and swap event);
//   - the physical page's write generation (mem.Physical.PageGen) is
//     unchanged, so the decoded block still mirrors the bytes in memory.
//     Every layer that can change executable bytes funnels through the
//     mem.Physical mutators — guest stores (self-modifying code), kernel
//     image loading, rtld relocation, COW copies, and swap-in — and each
//     of those bumps the page counter.
//
// The I-cache cycle charge is NOT skipped: the fast path issues the same
// cache.Hierarchy.Fetch call as the slow path, so cycle counts, miss
// counts, and LRU state are bit-identical with the cache on or off.

// instPage is one decoded physical page: PageSize/InstSize instructions
// plus the mem write generation the decode was taken at, and the
// superblock successor links for runs that left this page (threaded.go).
type instPage struct {
	gen   uint64
	insts [vm.PageSize / isa.InstSize]isa.Inst
	links [linkWays]chainLink
}

// linkWays is the number of direct-mapped successor-link slots per decoded
// page, indexed by the target's virtual page number. Hot code rarely
// leaves one page for more than a few distinct successors (fallthrough
// plus a handful of branch targets); conflicting targets just re-prove.
const linkWays = 4

// chainLink is one superblock successor edge: proof that a virtual target
// page resolved to a particular decoded block last time control left the
// owning page for it. A link asserts nothing about the owning page's
// contents — it is keyed purely by target — so it survives re-decodes of
// its owner. It is live only while every recorded condition still holds:
//
//   - the run executes under the same address space at the same mutation
//     generation (lk.as, lk.asGen), so vaPage still translates to paPage
//     with execute rights proven;
//   - the target page's bytes are unchanged (mem.PageGen(paPage) still
//     equals page.gen), so the decoded block mirrors memory.
//
// PCC validity is deliberately not recorded: the traverser re-checks the
// target against the current PCC's bounds on every traversal (tag, seal,
// and permissions are already proven for the whole run, since nothing
// inside a run replaces PCC). A link that fails validation is re-proved
// through the full translate walk or severed.
type chainLink struct {
	page   *instPage
	as     *vm.AddressSpace
	asGen  uint64
	vaPage uint64
	paPage uint64
}

// fetchLatch caches everything needed to prove the fast path sound for
// the current (PCC, address space, page) triple.
type fetchLatch struct {
	page   *instPage
	as     *vm.AddressSpace
	asGen  uint64
	pcc    cap.Capability
	vaPage uint64 // virtual page base of PC
	paPage uint64 // physical page base it translates to
}

// DecodeStats counts decoded-instruction-cache events. These are simulator
// bookkeeping, not architectural state: they are deliberately kept out of
// Stats so runs with the cache on and off report identical Stats.
type DecodeStats struct {
	Hits     uint64 // fast-path fetches served from a decoded block
	Misses   uint64 // slow-path fetches with the cache enabled (latch invalid)
	Disabled uint64 // slow-path fetches taken because NoDecodeCache is set
	Decodes  uint64 // whole-page decodes (first touch or invalidation)
	Flushes  uint64 // explicit SyncICache calls

	// Threaded counts instructions retired inside the block-threaded
	// engine (a subset of Hits); Blocks counts the straight-line runs they
	// were grouped into.
	Threaded uint64
	Blocks   uint64

	// Chains counts superblock link traversals (page-to-page transitions
	// that stayed inside the threaded engine); Severs counts links dropped
	// because re-proving the target translation faulted.
	Chains uint64
	Severs uint64

	// IndirectHits counts CJR/CJALR transfers served by the
	// indirect-target cache or the return stack (the run stayed inside
	// the threaded engine); IndirectMisses counts transfers that
	// re-proved from scratch; IndirectSevers counts cache entries dropped
	// because the re-proof's translate walk faulted (indirect.go).
	IndirectHits   uint64
	IndirectMisses uint64
	IndirectSevers uint64
}

const pageOffMask = vm.PageSize - 1

// pageFor returns the decoded block for the physical page containing pa,
// (re)decoding it if the page's bytes changed since the last decode. A
// small direct-mapped block index in front of the map serves the hot path
// (page-boundary crossings and chain re-proofs revisit the same few pages);
// the map remains the backing store, so an index conflict only costs the
// map lookup, never a re-decode.
func (c *CPU) pageFor(paPage uint64) *instPage {
	gen := c.Mem.PageGen(paPage)
	e := &c.blockIdx[(paPage>>vm.PageShift)&(blockIdxSize-1)]
	if p := e.page; p != nil && e.paPage == paPage && p.gen == gen {
		return p
	}
	p := c.decoded[paPage]
	if p != nil && p.gen == gen {
		e.paPage, e.page = paPage, p
		return p
	}
	if p == nil {
		p = &instPage{}
		if c.decoded == nil {
			c.decoded = map[uint64]*instPage{}
		}
		c.decoded[paPage] = p
	}
	var raw [vm.PageSize]byte
	c.Mem.ReadBytes(paPage, raw[:])
	for i := range p.insts {
		p.insts[i] = isa.Decode(binary.LittleEndian.Uint32(raw[i*isa.InstSize:]))
	}
	p.gen = gen
	e.paPage, e.page = paPage, p
	c.DecodeStats.Decodes++
	return p
}

// SyncICache drops every decoded block and the fetch latch, modelling an
// explicit instruction-cache synchronisation. The generation checks make
// the cache self-invalidating, so this is defence in depth: the kernel
// calls it after building a process image and the run-time linker after
// relocation, the points where a real OS would sync the I-cache.
func (c *CPU) SyncICache() {
	c.decoded = nil
	c.latch = fetchLatch{}
	// The block index must drop with the map: a surviving entry would
	// resurrect a pre-sync decoded page (and its superblock links) whose
	// generation still matches, defeating the explicit flush. The
	// indirect-target cache and return stack hold decoded pages too, so
	// they drop for the same reason.
	c.blockIdx = [blockIdxSize]blockIdxEnt{}
	c.icache = [indirectSize]indirectEnt{}
	c.rstack = [retStackSize]indirectEnt{}
	c.rsp = 0
	c.DecodeStats.Flushes++
}

// fetchInst performs the instruction fetch for Step: PCC check,
// translation, I-cache cycle charge, and decode. The fast path replaces
// the first, second, and fourth with latch validation; the cycle charge is
// issued identically on both paths.
func (c *CPU) fetchInst() (isa.Inst, *Trap) {
	l := &c.latch
	if !c.NoDecodeCache && l.page != nil &&
		c.PC-l.vaPage < vm.PageSize &&
		c.AS == l.as && c.AS.Gen == l.asGen &&
		c.PCC == l.pcc &&
		c.PCC.InBounds(c.PC, isa.InstSize) &&
		c.Mem.PageGen(l.paPage) == l.page.gen {
		off := c.PC - l.vaPage
		if off%isa.InstSize == 0 {
			c.Stats.Cycles += c.Hier.Fetch(l.paPage+off, isa.InstSize) - 1
			c.DecodeStats.Hits++
			return l.page.insts[off/isa.InstSize], nil
		}
	}
	if c.NoDecodeCache {
		c.DecodeStats.Disabled++ // cache off: not a miss, the cache never ran
	} else {
		c.DecodeStats.Misses++
	}

	// Slow path: identical to the pre-cache fetch sequence.
	if err := c.PCC.CheckDeref(c.PC, isa.InstSize, cap.PermExecute); err != nil {
		return isa.Inst{}, c.capTrap(isa.Inst{}, err)
	}
	pa, pf := c.translate(c.PC, vm.ProtExec)
	if pf != nil {
		return isa.Inst{}, &Trap{Kind: TrapPageFault, PC: c.PC, Page: pf}
	}
	c.Stats.Cycles += c.Hier.Fetch(pa, isa.InstSize) - 1 // L1I hit is pipelined
	if c.NoDecodeCache || c.PC%isa.InstSize != 0 {
		// Misaligned PCs fetch the word at the raw address, which is not
		// one of the page's aligned slots; decode it directly.
		return isa.Decode(uint32(c.Mem.Load(pa, isa.InstSize))), nil
	}
	paPage := pa &^ uint64(pageOffMask)
	page := c.pageFor(paPage)
	c.latch = fetchLatch{
		page:   page,
		as:     c.AS,
		asGen:  c.AS.Gen,
		pcc:    c.PCC,
		vaPage: c.PC &^ uint64(pageOffMask),
		paPage: paPage,
	}
	return page.insts[(pa&pageOffMask)/isa.InstSize], nil
}

// Compile-time guarantee that the generation-tracking page in mem matches
// the MMU page: the decode cache keys blocks by vm page but validates them
// with mem page generations.
var _ [0]struct{} = [vm.PageShift - mem.PageShift]struct{}{}
