package cpu

import (
	"cheriabi/internal/cap"
	"cheriabi/internal/isa"
	"cheriabi/internal/vm"
)

// Indirect-transfer prediction: the last uncovered transfer kind after
// superblock chaining (threaded.go). Under CheriABI every inter-function
// transfer is a CJR or CJALR through a code capability, and PR 8's
// chaining deliberately exits the threaded engine on exactly those
// instructions, so the hottest control-flow edge in capability code —
// call/return — still paid a full latch rebuild through Step (capability
// re-proof plus a translate(ProtExec) walk) per transfer.
//
// The indirect-target cache removes that exit. Each entry records a fully
// validated transfer:
//
//   - cp, the code capability EXACTLY as it passed its execute proof. The
//     proof (CheckDeref: tag set, unsealed, PermExecute, cursor in bounds
//     for one instruction) is a pure function of the capability value, so
//     a bit-identical capability re-proves by identity compare alone. A
//     different capability to the same address — narrower bounds, fewer
//     permissions, cleared tag, a seal — compares unequal and re-proves
//     from scratch. The cursor is part of the value, so the compare also
//     keys the entry by target address.
//   - the decoded target page (page, vaPage, paPage) and the generations
//     the translation proof was taken at (as, asGen, plus page.gen checked
//     against mem.PageGen per traversal) — exactly the revalidation
//     contract superblock chain links use: AS identity, AS.Gen, and target
//     PageGen compared on EVERY traversal, so mprotect, munmap, fork,
//     COW, swap, and self-modifying code invalidate cached transfers the
//     same way they invalidate chain links.
//
// A traversal whose generation compares fail falls through to the miss
// path, which re-proves the capability and the translation (severing the
// entry if the walk faults, leaving Step to raise the identical fault at
// the identical PC). Entries are filled only on the miss path after both
// proofs succeed, and only at a point where the unoptimised machine would
// perform the same walk as its very next action (threaded.go).
//
// On top of the cache, the return edge is specialised: CJALR pushes the
// link capability it wrote — which carries the same by-construction
// execute proof, verified at push time — onto a small return stack
// latching the current (already proven) page, so the matching CJR return
// predicts without even probing the cache. A mismatched or stale top is
// simply a prediction miss; the cache and then the full re-proof back it
// up.

// indirectSize is the number of direct-mapped indirect-target cache
// entries.
const indirectSize = 256

// retStackSize is the depth of the return-prediction stack. Deeper
// recursion wraps and overwrites; a lost entry only costs a cache probe.
const retStackSize = 8

// indirectEnt is one validated indirect-transfer proof (see the package
// comment above). The zero value (page == nil) is an empty slot.
type indirectEnt struct {
	cp     cap.Capability // the code capability exactly as proven
	page   *instPage      // decoded target page
	as     *vm.AddressSpace
	asGen  uint64
	vaPage uint64 // virtual page base of the target
	paPage uint64 // physical page base it translated to at asGen
}

// indirectIdx maps a code capability to its direct-mapped cache slot. The
// cursor is the target VA; mixing in the base distinguishes same-address
// transfers through differently-bounded capabilities so they do not
// thrash one slot.
func indirectIdx(cb cap.Capability) uint64 {
	h := cb.Addr() >> 2 // targets are instruction-aligned
	h ^= cb.Base() >> 7
	h ^= h >> 16
	return h & (indirectSize - 1)
}

// valid reports whether the entry's translation proof still stands for
// the CPU's current address space (the capability identity compare is the
// caller's, so the two checks read as one contract at the probe sites).
func (e *indirectEnt) valid(c *CPU) bool {
	return e.page != nil && e.as == c.AS && e.asGen == c.AS.Gen &&
		c.Mem.PageGen(e.paPage) == e.page.gen
}

// pushReturn records a return prediction: the link capability a CJALR
// just wrote, latched to the (currently proven) page it returns into.
// The entry must carry the same proof an indirect-cache fill does, so it
// is recorded only if the constructed link capability authorizes the
// return fetch by itself — SetAddr can clear the tag on unrepresentable
// cursors, and a call from the last in-bounds instruction makes the
// return address out of bounds; both must re-prove (and fault) through
// the full path.
func (c *CPU) pushReturn(lc cap.Capability, page *instPage, vaPage, paPage, asGen uint64) {
	if lc.Addr()-vaPage >= vm.PageSize || !lc.Authorizes(lc.Addr(), 4, cap.PermExecute) {
		return
	}
	c.rstack[c.rsp%retStackSize] = indirectEnt{
		cp: lc, page: page, as: c.AS, asGen: asGen, vaPage: vaPage, paPage: paPage,
	}
	c.rsp++
}

// runState carries the threaded engine's run-local page state across the
// out-of-line indirect-transfer handler (runBlock keeps these in locals;
// the handler lives out of line so its capability-typed temporaries never
// join the hot loop's register allocation).
type runState struct {
	pc     uint64
	page   *instPage
	vaPage uint64
	paPage uint64
	asGen  uint64
}

// indirectTransfer executes one CJR/CJALR inside the threaded engine.
//
// On a hit (return-stack top or cache slot whose identity and generation
// proofs stand) it performs the transfer and swaps rs to the cached
// target page: inRun true. On a miss it performs exec's exact check
// sequence — a failed CheckDeref returns the error with NO state changed,
// so the caller traps identically to exec — then performs the transfer
// and, only when canFetch says the fetch at the target is provably the
// machine's next action (budget left, aligned target; otherwise walking
// the tables here could resolve a soft fault the in-order machine never
// reaches), re-proves the translation, fills the cache slot, and
// continues the run. A translate fault severs the slot and exits the run
// (inRun false) with no error: Step repeats the walk and raises the
// identical fault at the identical PC.
func (c *CPU) indirectTransfer(in isa.Inst, rs *runState, canFetch bool) (inRun bool, err error) {
	var cb cap.Capability
	if in.Op == isa.CJR {
		cb = c.C[in.Ra]
	} else {
		cb = c.C[in.Rb]
	}
	var hit *indirectEnt
	if in.Op == isa.CJR && c.rsp > 0 {
		if top := &c.rstack[(c.rsp-1)%retStackSize]; top.cp == cb && top.valid(c) {
			hit = top
			c.rsp--
		}
	}
	slot := &c.icache[indirectIdx(cb)]
	if hit == nil && slot.cp == cb && slot.valid(c) {
		hit = slot
	}
	if hit != nil {
		// A bit-identical capability passed CheckDeref when the entry was
		// filled (a pure function of the value), and the recorded
		// translation still stands — exec's sequence with both proofs
		// served from cache.
		if in.Op == isa.CJALR {
			lc := c.Fmt.SetAddr(c.PCC, rs.pc+isa.InstSize)
			c.setC(in.Ra, lc)
			c.pushReturn(lc, rs.page, rs.vaPage, rs.paPage, rs.asGen)
		}
		c.PCC = cb
		*rs = runState{pc: cb.Addr(), page: hit.page, vaPage: hit.vaPage,
			paPage: hit.paPage, asGen: hit.asGen}
		c.DecodeStats.IndirectHits++
		return true, nil
	}
	// Miss: the full architectural proof in exec's exact order. Nothing
	// is filled on a failed check.
	c.DecodeStats.IndirectMisses++
	if err := cb.CheckDeref(cb.Addr(), isa.InstSize, cap.PermExecute); err != nil {
		return false, err
	}
	if in.Op == isa.CJALR {
		lc := c.Fmt.SetAddr(c.PCC, rs.pc+isa.InstSize)
		c.setC(in.Ra, lc)
		c.pushReturn(lc, rs.page, rs.vaPage, rs.paPage, rs.asGen)
	}
	c.PCC = cb
	rs.pc = cb.Addr()
	if !canFetch || rs.pc%isa.InstSize != 0 {
		return false, nil // Step performs the next fetch (and any walk) itself
	}
	// The very next architectural action is the fetch at rs.pc, so this
	// translate is the walk Step would perform — including any soft-fault
	// resolution, which is why AS.Gen is re-read after it for the proof.
	pa, pf := c.translate(rs.pc, vm.ProtExec)
	if pf != nil {
		slot.page = nil
		c.DecodeStats.IndirectSevers++
		return false, nil // Step repeats the walk and raises the identical fault
	}
	tva := rs.pc &^ uint64(pageOffMask)
	tpa := pa &^ uint64(pageOffMask)
	*slot = indirectEnt{cp: cb, page: c.pageFor(tpa), as: c.AS,
		asGen: c.AS.Gen, vaPage: tva, paPage: tpa}
	rs.page, rs.vaPage, rs.paPage, rs.asGen = slot.page, tva, tpa, c.AS.Gen
	return true, nil
}
