package cpu

import (
	"encoding/binary"
	"fmt"

	"cheriabi/internal/cap"
	"cheriabi/internal/isa"
	"cheriabi/internal/vm"
)

// dataFrame is a one-entry L0 in front of the micro-TLB and mem's
// Load/Store call chain: it latches one translated data page's backing
// arrays so aligned scalar accesses that stay on the page are served
// straight from the page slice. A hit re-proves the cached translation
// exactly as a micro-TLB hit does (address-space identity plus AS.Gen
// plus vpn — mprotect, munmap, fork and COW resolution all bump AS.Gen)
// and additionally re-proves the backing identity with mem's Epoch
// (chunk materialization, privatization, and snapshotting move or share
// the arrays; in-place content writes are visible through the slices by
// mem's contract and need no check). The protection proof is encoded by
// which frame holds the page: rframe is filled only after a ProtRead
// translation, wframe only after ProtWrite. Frames never outlive their
// proofs, and a CPU's Mem is fixed for its lifetime, so the slices can
// never alias a different machine's memory.
type dataFrame struct {
	data  []byte // page bytes; nil means empty frame
	as    *vm.AddressSpace
	asGen uint64
	epoch uint64
	vpn   uint64
	base  uint64  // physical page base (for cache-model charging)
	tags  []bool  // write frames only: the page's tag granules
	gen   *uint64 // write frames only: the page's write-generation counter
	gsh   uint    // write frames only: log2(granule)
}

// hits reports whether the frame serves vpn under the CPU's current
// translation and backing proofs.
func (f *dataFrame) hits(c *CPU, vpn uint64) bool {
	return f.data != nil && f.vpn == vpn && f.as == c.AS &&
		f.asGen == c.AS.Gen && f.epoch == c.Mem.Epoch()
}

// AlignmentError reports a misaligned access (CHERI traps on under-aligned
// accesses; one of the paper's PostgreSQL test failures is exactly this).
type AlignmentError struct {
	VA   uint64
	Size uint64
}

func (e *AlignmentError) Error() string {
	return fmt.Sprintf("misaligned access: va=0x%x size=%d", e.VA, e.Size)
}

// accessTrap converts an access error into a trap.
func (c *CPU) accessTrap(in isa.Inst, err error) *Trap {
	switch e := err.(type) {
	case *cap.Fault:
		return &Trap{Kind: TrapCapFault, PC: c.PC, Inst: in, Cap: e}
	case *vm.PageFault:
		return &Trap{Kind: TrapPageFault, PC: c.PC, Inst: in, Page: e}
	case *AlignmentError:
		return &Trap{Kind: TrapAlignment, PC: c.PC, Inst: in}
	}
	panic(fmt.Sprintf("cpu: unexpected access error %T: %v", err, err))
}

func opSize(op isa.Op) (size uint64, signed bool) {
	switch op {
	case isa.LB, isa.CLB:
		return 1, true
	case isa.LBU, isa.CLBU, isa.SB, isa.CSB:
		return 1, false
	case isa.LH, isa.CLH:
		return 2, true
	case isa.LHU, isa.CLHU, isa.SH, isa.CSH:
		return 2, false
	case isa.LW, isa.CLW:
		return 4, true
	case isa.LWU, isa.CLWU, isa.SW, isa.CSW:
		return 4, false
	case isa.LD, isa.CLD, isa.SD, isa.CSD:
		return 8, false
	}
	panic(fmt.Sprintf("cpu: not a scalar memory op: %v", op))
}

func (c *CPU) loadInt(in isa.Inst, auth cap.Capability, ea uint64) (uint64, *Trap) {
	size, signed := opSize(in.Op)
	v, err := c.LoadVia(auth, ea, size)
	if err != nil {
		return 0, c.accessTrap(in, err)
	}
	c.Stats.Loads++
	if signed {
		switch size {
		case 1:
			v = uint64(int64(int8(v)))
		case 2:
			v = uint64(int64(int16(v)))
		case 4:
			v = uint64(int64(int32(v)))
		}
	}
	return v, nil
}

func (c *CPU) storeInt(in isa.Inst, auth cap.Capability, ea uint64, v uint64) *Trap {
	size, _ := opSize(in.Op)
	if err := c.StoreVia(auth, ea, size, v); err != nil {
		return c.accessTrap(in, err)
	}
	c.Stats.Stores++
	return nil
}

// LoadVia performs a capability-authorized scalar load. The kernel uses
// this with user-supplied capabilities to implement copyin ("Kernel code
// dereferences user-provided capabilities when accessing user memory").
func (c *CPU) LoadVia(auth cap.Capability, ea, size uint64) (uint64, error) {
	return c.loadViaP(&auth, ea, size)
}

// loadViaP is LoadVia behind a pointer: the threaded engine authorizes
// straight against the register file, so the hot path never copies the
// capability (the checks are value-identical; only the error path, which
// embeds the capability in the fault, reads it in full).
func (c *CPU) loadViaP(auth *cap.Capability, ea, size uint64) (uint64, error) {
	// Access sizes are always powers of two (1/2/4/8 scalars, 16/32
	// capability widths), so the natural-alignment check is a mask — a
	// variable-divisor modulo here is a hardware divide on the hottest
	// path in the simulator.
	if ea&(size-1) != 0 {
		return 0, &AlignmentError{VA: ea, Size: size}
	}
	if !auth.Authorizes(ea, size, cap.PermLoad) {
		return 0, auth.CheckDeref(ea, size, cap.PermLoad)
	}
	vpn := ea >> vm.PageShift
	// Data-frame hit: serve the load from the latched page slice. An
	// aligned power-of-two access of ≤ 8 bytes never leaves the page.
	if f := &c.rframe; f.hits(c, vpn) {
		off := ea & pageOffMask
		// The inline-able front-latch probe first; only a latch miss pays
		// the Data call.
		if lat, ok := c.Hier.L1D.DataHit(f.base+off, size, false); ok {
			c.Stats.Cycles += lat
		} else {
			c.Stats.Cycles += c.Hier.Data(f.base+off, size, false)
		}
		d := f.data[off:]
		switch size {
		case 1:
			return uint64(d[0]), nil
		case 2:
			return uint64(binary.LittleEndian.Uint16(d)), nil
		case 4:
			return uint64(binary.LittleEndian.Uint32(d)), nil
		case 8:
			return binary.LittleEndian.Uint64(d), nil
		}
		return c.Mem.Load(f.base+off, size), nil // other sizes panic there, as ever
	}
	// Micro-TLB hit check inlined from translate: this is the hottest
	// translation site in the simulator, and the call (with its two return
	// values) is measurable against a four-compare hit test.
	e := &c.tlb[vpn&(dtlbSize-1)]
	var pa uint64
	if e.as == c.AS && e.gen == c.AS.Gen && e.vpn == vpn && e.prot&vm.ProtRead != 0 {
		pa = e.base + ea%vm.PageSize
	} else {
		var pf *vm.PageFault
		pa, pf = c.translate(ea, vm.ProtRead)
		if pf != nil {
			return 0, pf
		}
	}
	// Refill the read frame for the translated page. ReadablePage is nil
	// for a never-written page — such a page reads as zero through Load
	// and cannot be latched (materializing on a read would change the
	// lazy-allocation observable Epoch).
	paPage := pa &^ uint64(pageOffMask)
	if d := c.Mem.ReadablePage(paPage); d != nil {
		c.rframe = dataFrame{data: d, as: c.AS, asGen: c.AS.Gen,
			epoch: c.Mem.Epoch(), vpn: vpn, base: paPage}
	}
	c.Stats.Cycles += c.Hier.Data(pa, size, false)
	return c.Mem.Load(pa, size), nil
}

// StoreVia performs a capability-authorized scalar store.
func (c *CPU) StoreVia(auth cap.Capability, ea, size, v uint64) error {
	return c.storeViaP(&auth, ea, size, v)
}

// storeViaP is StoreVia behind a pointer (see loadViaP).
func (c *CPU) storeViaP(auth *cap.Capability, ea, size, v uint64) error {
	if ea&(size-1) != 0 { // sizes are powers of two (see loadViaP)
		return &AlignmentError{VA: ea, Size: size}
	}
	if !auth.Authorizes(ea, size, cap.PermStore) {
		return auth.CheckDeref(ea, size, cap.PermStore)
	}
	vpn := ea >> vm.PageShift
	// Data-frame hit: write the page slice directly, taking over Store's
	// aligned single-granule contract — an aligned store of ≤ 8 bytes
	// never straddles a ≥ 16-byte tag granule, so exactly one tag is
	// cleared and one page generation bumped.
	if f := &c.wframe; f.hits(c, vpn) {
		off := ea & pageOffMask
		if lat, ok := c.Hier.L1D.DataHit(f.base+off, size, true); ok {
			c.Stats.Cycles += lat
		} else {
			c.Stats.Cycles += c.Hier.Data(f.base+off, size, true)
		}
		d := f.data[off:]
		switch size {
		case 1:
			d[0] = byte(v)
		case 2:
			binary.LittleEndian.PutUint16(d, uint16(v))
		case 4:
			binary.LittleEndian.PutUint32(d, uint32(v))
		case 8:
			binary.LittleEndian.PutUint64(d, v)
		default:
			c.Mem.Store(f.base+off, size, v) // other sizes panic there, as ever
			return nil
		}
		f.tags[off>>f.gsh] = false
		*f.gen++
		return nil
	}
	// Micro-TLB hit check inlined from translate (see loadViaP).
	e := &c.tlb[vpn&(dtlbSize-1)]
	var pa uint64
	if e.as == c.AS && e.gen == c.AS.Gen && e.vpn == vpn && e.prot&vm.ProtWrite != 0 {
		pa = e.base + ea%vm.PageSize
	} else {
		var pf *vm.PageFault
		pa, pf = c.translate(ea, vm.ProtWrite)
		if pf != nil {
			return pf
		}
	}
	c.Stats.Cycles += c.Hier.Data(pa, size, true)
	c.Mem.Store(pa, size, v)
	// Refill the write frame AFTER the store: Store materializes (and, if
	// snapshot-shared, privatizes) the chunk, so WritablePage here never
	// moves arrays again and the Epoch read is post-settlement.
	paPage := pa &^ uint64(pageOffMask)
	if d, tags, gen := c.Mem.WritablePage(paPage); d != nil {
		c.wframe = dataFrame{data: d, as: c.AS, asGen: c.AS.Gen,
			epoch: c.Mem.Epoch(), vpn: vpn, base: paPage,
			tags: tags, gen: gen, gsh: c.Mem.GranShift()}
	}
	return nil
}

// LoadCapVia loads one capability. PermLoad authorizes the bytes; without
// PermLoadCap the loaded value arrives with its tag stripped.
func (c *CPU) LoadCapVia(auth cap.Capability, ea uint64) (cap.Capability, error) {
	bytes := c.Fmt.Bytes
	if ea&(bytes-1) != 0 { // capability widths are powers of two
		return cap.Null(), &AlignmentError{VA: ea, Size: bytes}
	}
	if err := auth.CheckDeref(ea, bytes, cap.PermLoad); err != nil {
		return cap.Null(), err
	}
	pa, pf := c.translate(ea, vm.ProtRead)
	if pf != nil {
		return cap.Null(), pf
	}
	c.Stats.Cycles += c.Hier.Data(pa, bytes, false)
	var arr [32]byte // large enough for both capability formats
	buf := arr[:bytes]
	tag := c.Mem.LoadCap(pa, buf)
	if tag && !auth.HasPerm(cap.PermLoadCap) {
		tag = false
	}
	return c.Fmt.Decode(buf, tag), nil
}

// StoreCapVia stores one capability. Storing a tagged value requires
// PermStoreCap; storing a tagged non-global value additionally requires
// PermStoreLocalCap.
func (c *CPU) StoreCapVia(auth cap.Capability, ea uint64, v cap.Capability) error {
	bytes := c.Fmt.Bytes
	if ea&(bytes-1) != 0 { // capability widths are powers of two
		return &AlignmentError{VA: ea, Size: bytes}
	}
	need := cap.PermStore
	if v.Tag() {
		need |= cap.PermStoreCap
		if !v.HasPerm(cap.PermGlobal) {
			need |= cap.PermStoreLocalCap
		}
	}
	if err := auth.CheckDeref(ea, bytes, need); err != nil {
		return err
	}
	pa, pf := c.translate(ea, vm.ProtWrite)
	if pf != nil {
		return pf
	}
	c.Stats.Cycles += c.Hier.Data(pa, bytes, true)
	var arr [32]byte // large enough for both capability formats
	buf := arr[:bytes]
	c.Fmt.Encode(v, buf)
	c.Mem.StoreCap(pa, buf, v.Tag())
	return nil
}

// Bulk byte access (kernel copyin/copyout, runtime memory/string ops)
// lives in internal/uaccess: the page-run engine validates the capability
// once per call, translates through TranslateData, and charges Hier.Data
// per run, so every kernel- and runtime-initiated access shares one
// auditable check-then-access layer.
