package cpu

import (
	"testing"

	"cheriabi/internal/cache"
	"cheriabi/internal/cap"
	"cheriabi/internal/isa"
	"cheriabi/internal/mem"
	"cheriabi/internal/vm"
)

// The data micro-TLB is a transparent cache of AddressSpace.Translate.
// These tests cover its invalidation contract directly through the CPU's
// capability-authorized access methods (the same paths guest loads and
// stores take): protection changes, unmap/remap, fork copy-on-write, and
// frames shared between address spaces.

func testDDC() cap.Capability { return cap.Root(0, 1<<40, cap.PermData) }

// TestMicroTLBProtectInvalidates: a cached write translation must die when
// mprotect removes write permission, and revive when it is restored.
func TestMicroTLBProtectInvalidates(t *testing.T) {
	c := newTestCPU(t)
	ddc := testDDC()
	if err := c.StoreVia(ddc, dataVA, 8, 0x11); err != nil {
		t.Fatal(err)
	}
	if err := c.AS.Protect(dataVA, vm.PageSize, vm.ProtRead); err != nil {
		t.Fatal(err)
	}
	err := c.StoreVia(ddc, dataVA, 8, 0x22)
	pf, ok := err.(*vm.PageFault)
	if !ok || pf.Kind != vm.FaultProt {
		t.Fatalf("store after mprotect: want protection fault, got %v", err)
	}
	if v, err := c.LoadVia(ddc, dataVA, 8); err != nil || v != 0x11 {
		t.Fatalf("read-only page: got %#x, %v", v, err)
	}
	if err := c.AS.Protect(dataVA, vm.PageSize, vm.ProtRead|vm.ProtWrite); err != nil {
		t.Fatal(err)
	}
	if err := c.StoreVia(ddc, dataVA, 8, 0x33); err != nil {
		t.Fatalf("store after restoring write: %v", err)
	}
	if v, _ := c.LoadVia(ddc, dataVA, 8); v != 0x33 {
		t.Fatalf("got %#x, want 0x33", v)
	}
}

// TestMicroTLBReadEntryDoesNotAuthorizeWrite: an entry proven for reads
// must not satisfy a write on a read-only page (per-access-kind proofs).
func TestMicroTLBReadEntryDoesNotAuthorizeWrite(t *testing.T) {
	c := newTestCPU(t)
	ddc := testDDC()
	roVA := uint64(0x50000)
	if err := c.AS.Map(roVA, vm.PageSize, vm.ProtRead, false); err != nil {
		t.Fatal(err)
	}
	if _, err := c.LoadVia(ddc, roVA, 8); err != nil {
		t.Fatal(err)
	}
	err := c.StoreVia(ddc, roVA, 8, 1)
	pf, ok := err.(*vm.PageFault)
	if !ok || pf.Kind != vm.FaultProt {
		t.Fatalf("write through read-proven entry: want protection fault, got %v", err)
	}
}

// TestMicroTLBUnmapRemap: unmap must fault subsequent accesses even with a
// warm entry; remapping the same address must observe the fresh
// demand-zero frame, not the cached translation of the old one.
func TestMicroTLBUnmapRemap(t *testing.T) {
	c := newTestCPU(t)
	ddc := testDDC()
	if err := c.StoreVia(ddc, dataVA, 8, 0xAB); err != nil {
		t.Fatal(err)
	}
	if err := c.AS.Unmap(dataVA, vm.PageSize); err != nil {
		t.Fatal(err)
	}
	if _, err := c.LoadVia(ddc, dataVA, 8); err == nil {
		t.Fatal("load of unmapped page served from stale TLB entry")
	}
	if err := c.AS.Map(dataVA, vm.PageSize, vm.ProtRead|vm.ProtWrite, false); err != nil {
		t.Fatal(err)
	}
	if v, err := c.LoadVia(ddc, dataVA, 8); err != nil || v != 0 {
		t.Fatalf("remapped page: got %#x, %v; want demand-zero 0", v, err)
	}
}

// TestMicroTLBForkCOW: fork marks the parent's writable pages
// copy-on-write without replacing the page-table entries the TLB was
// filled from. A post-fork write through a warm TLB entry that skipped the
// COW copy would mutate the frame the child still shares — the Gen bump in
// Fork is what prevents it.
func TestMicroTLBForkCOW(t *testing.T) {
	m := mem.New(16<<20, 16)
	sys := vm.NewSystem(m, 1<<20)
	c := New(m, cache.DefaultHierarchy(), cap.Format128)
	ddc := testDDC()
	as1 := sys.NewAddressSpace()
	if err := as1.Map(dataVA, vm.PageSize, vm.ProtRead|vm.ProtWrite, false); err != nil {
		t.Fatal(err)
	}
	c.AS = as1
	if err := c.StoreVia(ddc, dataVA, 8, 1); err != nil { // warm write entry
		t.Fatal(err)
	}
	as2 := as1.Fork()
	if err := c.StoreVia(ddc, dataVA, 8, 2); err != nil { // must COW first
		t.Fatal(err)
	}
	pa2, pf := as2.Translate(dataVA, vm.ProtRead)
	if pf != nil {
		t.Fatal(pf)
	}
	if v := m.Load(pa2, 8); v != 1 {
		t.Fatalf("child observed parent's post-fork write (%d): stale TLB entry bypassed COW", v)
	}
	if v, _ := c.LoadVia(ddc, dataVA, 8); v != 2 {
		t.Fatalf("parent lost its own write: got %d", v)
	}
}

// TestMicroTLBSharedFrames: two address spaces mapping the same frames see
// each other's writes immediately — per-AS TLB entries must not conflate
// the spaces even when the virtual pages collide in the direct-mapped
// array.
func TestMicroTLBSharedFrames(t *testing.T) {
	m := mem.New(16<<20, 16)
	sys := vm.NewSystem(m, 1<<20)
	c := New(m, cache.DefaultHierarchy(), cap.Format128)
	ddc := testDDC()
	frames := sys.AllocFrames(1)
	as1, as2 := sys.NewAddressSpace(), sys.NewAddressSpace()
	for _, as := range []*vm.AddressSpace{as1, as2} {
		if err := as.MapFrames(dataVA, frames, vm.ProtRead|vm.ProtWrite); err != nil {
			t.Fatal(err)
		}
	}
	// A private page at the same VA in as2: the direct-mapped slot for
	// dataVA is shared between the spaces, so this exercises replacement.
	privVA := uint64(dataVA + dtlbSize*vm.PageSize) // same TLB index as dataVA
	if err := as2.Map(privVA, vm.PageSize, vm.ProtRead|vm.ProtWrite, false); err != nil {
		t.Fatal(err)
	}
	c.AS = as1
	if err := c.StoreVia(ddc, dataVA, 8, 7); err != nil {
		t.Fatal(err)
	}
	c.AS = as2
	if v, err := c.LoadVia(ddc, dataVA, 8); err != nil || v != 7 {
		t.Fatalf("as2 shared view: got %#x, %v", v, err)
	}
	if err := c.StoreVia(ddc, privVA, 8, 9); err != nil {
		t.Fatal(err)
	}
	if err := c.StoreVia(ddc, dataVA, 8, 8); err != nil {
		t.Fatal(err)
	}
	c.AS = as1
	if v, _ := c.LoadVia(ddc, dataVA, 8); v != 8 {
		t.Fatalf("as1 missed as2's write through the shared frame: got %#x", v)
	}
	c.AS = as2
	if v, _ := c.LoadVia(ddc, privVA, 8); v != 9 {
		t.Fatalf("private page clobbered: got %#x", v)
	}
}

// TestMicroTLBSwap: swapping a page out must invalidate its cached
// translation; swap-in lands in a fresh frame the TLB must re-learn.
func TestMicroTLBSwap(t *testing.T) {
	c := newTestCPU(t)
	ddc := testDDC()
	if err := c.StoreVia(ddc, dataVA, 8, 0x77); err != nil {
		t.Fatal(err)
	}
	if err := c.AS.SwapOut(dataVA); err != nil {
		t.Fatal(err)
	}
	if v, err := c.LoadVia(ddc, dataVA, 8); err != nil || v != 0x77 {
		t.Fatalf("after swap round-trip: got %#x, %v", v, err)
	}
}

// TestThreadedMidRunSMC: a store inside a straight-line run that patches a
// later instruction of the *same page* must be observed by the very next
// fetch — the per-instruction generation re-check inside runBlock.
func TestThreadedMidRunSMC(t *testing.T) {
	exec := func(noThreaded bool) (uint64, Stats) {
		c := newTestCPU(t)
		c.NoThreadedDispatch = noThreaded
		patched := isa.MustEncode(isa.Inst{Op: isa.ADDI, Ra: 2, Rb: 0, Imm: 42})
		prog := storeWordInsts(patched, codeVA+6*isa.InstSize)
		prog = append(prog,
			isa.Inst{Op: isa.NOP},                        // 5: straight-line filler
			isa.Inst{Op: isa.ADDI, Ra: 2, Rb: 0, Imm: 1}, // 6: patch target
			isa.Inst{Op: isa.BREAK},                      // 7
		)
		load(t, c, prog)
		run(t, c)
		return c.X[2], c.Stats
	}
	gotOn, statsOn := exec(false)
	gotOff, statsOff := exec(true)
	if gotOn != 42 {
		t.Fatalf("threaded run executed stale instruction after mid-run patch: r2 = %d, want 42", gotOn)
	}
	if gotOff != gotOn || statsOn != statsOff {
		t.Fatalf("threaded on/off diverged: on r2=%d %+v, off r2=%d %+v", gotOn, statsOn, gotOff, statsOff)
	}
}

// TestThreadedLedgerFlushOnTrap: a trap in the middle of a block-threaded
// run must observe fully-flushed Stats — the kernel charges costs and
// reads the cycle clock at trap time, so a deferred ledger would skew
// simulated time. Compare the exact Stats at every trap against the
// unthreaded interpreter.
func TestThreadedLedgerFlushOnTrap(t *testing.T) {
	exec := func(noThreaded bool) []Stats {
		c := newTestCPU(t)
		c.NoThreadedDispatch = noThreaded
		prog := []isa.Inst{
			{Op: isa.ADDI, Ra: 2, Rb: 0, Imm: 1},
			{Op: isa.ADDI, Ra: 3, Rb: 0, Imm: 2},
			{Op: isa.SYSCALL}, // trap mid-page, mid-run
			{Op: isa.MUL, Ra: 4, Rb: 2, Rc: 3},
			{Op: isa.SYSCALL},
			{Op: isa.ADD, Ra: 5, Rb: 4, Rc: 2},
			{Op: isa.BREAK},
		}
		load(t, c, prog)
		var snaps []Stats
		for {
			tr := c.Run(0)
			if tr == nil {
				t.Fatal("budget expired unexpectedly")
			}
			snaps = append(snaps, c.Stats) // Stats as the kernel would see them
			if tr.Kind == TrapBreak {
				return snaps
			}
			if tr.Kind != TrapSyscall {
				t.Fatalf("unexpected trap %v", tr)
			}
			c.PC += isa.InstSize // kernel-style syscall completion
		}
	}
	on := exec(false)
	off := exec(true)
	if len(on) != len(off) {
		t.Fatalf("trap counts diverged: %d vs %d", len(on), len(off))
	}
	for i := range on {
		if on[i] != off[i] {
			t.Fatalf("Stats at trap %d diverged:\n threaded: %+v\nunthreaded: %+v", i, on[i], off[i])
		}
	}
}

// TestThreadedBudgetBoundary: Run(max) must retire exactly max
// instructions whether the boundary lands inside a straight-line run or
// not — the scheduler's quantum accounting depends on it.
func TestThreadedBudgetBoundary(t *testing.T) {
	prog := make([]isa.Inst, 0, 40)
	for i := 0; i < 32; i++ {
		prog = append(prog, isa.Inst{Op: isa.ADDI, Ra: 2, Rb: 2, Imm: 1})
	}
	prog = append(prog, isa.Inst{Op: isa.BREAK})
	for max := uint64(1); max <= 8; max++ {
		var got [2]Stats
		for mode, noThreaded := range []bool{false, true} {
			c := newTestCPU(t)
			c.NoThreadedDispatch = noThreaded
			load(t, c, prog)
			// Warm the decode latch so the threaded engine engages, then
			// reset the counters for a clean budget window.
			if tr := c.Run(2); tr != nil {
				t.Fatalf("warmup trapped: %v", tr)
			}
			c.PC = codeVA
			c.Stats = Stats{}
			if tr := c.Run(max); tr != nil {
				t.Fatalf("trapped inside budget: %v", tr)
			}
			if c.Stats.Instructions != max {
				t.Fatalf("noThreaded=%v: retired %d instructions, budget %d", noThreaded, c.Stats.Instructions, max)
			}
			got[mode] = c.Stats
		}
		if got[0] != got[1] {
			t.Fatalf("max=%d: budgeted Stats diverged:\n threaded: %+v\nunthreaded: %+v", max, got[0], got[1])
		}
	}
}
