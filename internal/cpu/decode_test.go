package cpu

import (
	"testing"

	"cheriabi/internal/cache"
	"cheriabi/internal/cap"
	"cheriabi/internal/isa"
	"cheriabi/internal/mem"
	"cheriabi/internal/vm"
)

// storeWordInsts assembles "store the 32-bit instruction word w at
// dataReg-relative address va" using LUI/ORI to build the word in r9.
// The word is stored through DDC with SW.
func storeWordInsts(w uint32, va uint64) []isa.Inst {
	// LUI(19-bit imm)<<14 | ORI(14-bit imm) reconstructs at most 33 bits.
	if va>>33 != 0 {
		panic("va does not survive LUI/ORI reconstruction")
	}
	return []isa.Inst{
		{Op: isa.LUI, Ra: 9, Imm: int32(w >> 14)},
		{Op: isa.ORI, Ra: 9, Rb: 9, Imm: int32(w & 0x3FFF)},
		{Op: isa.LUI, Ra: 8, Imm: int32(va >> 14)},
		{Op: isa.ORI, Ra: 8, Rb: 8, Imm: int32(va & 0x3FFF)},
		{Op: isa.SW, Ra: 9, Rb: 8, Imm: 0},
	}
}

// TestSelfModifyingCodeObservesNewBytes patches an instruction on a page
// that has already been decoded (the whole page is decoded on first fetch)
// and checks execution sees the new bytes. Run with the decode cache on
// and off, asserting identical architectural results.
func TestSelfModifyingCodeObservesNewBytes(t *testing.T) {
	run := func(disable bool) (uint64, Stats) {
		c := newTestCPU(t)
		c.NoDecodeCache = disable
		patched := isa.MustEncode(isa.Inst{Op: isa.ADDI, Ra: 2, Rb: 0, Imm: 42})
		prog := storeWordInsts(patched, codeVA+5*isa.InstSize)
		prog = append(prog,
			isa.Inst{Op: isa.ADDI, Ra: 2, Rb: 0, Imm: 1}, // patch target (slot 5)
			isa.Inst{Op: isa.BREAK},
		)
		load(t, c, prog)
		run(t, c)
		return c.X[2], c.Stats
	}
	gotOn, statsOn := run(false)
	gotOff, statsOff := run(true)
	if gotOn != 42 {
		t.Fatalf("decode cache served stale instruction: r2 = %d, want 42", gotOn)
	}
	if gotOff != gotOn || statsOn != statsOff {
		t.Fatalf("cache on/off diverged: on r2=%d %+v, off r2=%d %+v", gotOn, statsOn, gotOff, statsOff)
	}
}

// TestSelfModifyingCodeAfterExecution executes an instruction, loops back,
// patches it, and re-executes it — the already-hit fast path must observe
// the store.
func TestSelfModifyingCodeAfterExecution(t *testing.T) {
	c := newTestCPU(t)
	patched := isa.MustEncode(isa.Inst{Op: isa.ADDI, Ra: 2, Rb: 2, Imm: 100})
	// r4 counts passes. Pass 1 executes the original target (r2 += 1) and
	// patches it; pass 2 executes the patched target (r2 += 100).
	prog := []isa.Inst{
		{Op: isa.ADDI, Ra: 4, Rb: 4, Imm: 1}, // 0: pass++
		{Op: isa.ADDI, Ra: 2, Rb: 2, Imm: 1}, // 1: patch target
	}
	prog = append(prog, storeWordInsts(patched, codeVA+1*isa.InstSize)...) // 2..6
	prog = append(prog,
		isa.Inst{Op: isa.ADDI, Ra: 5, Rb: 0, Imm: 2}, // 7: limit
		isa.Inst{Op: isa.BLT, Ra: 4, Rb: 5, Imm: -8}, // 8: loop while pass < 2
		isa.Inst{Op: isa.BREAK},                      // 9
	)
	load(t, c, prog)
	run(t, c)
	if c.X[2] != 101 {
		t.Fatalf("r2 = %d, want 101 (1 from pass 1, 100 from patched pass 2)", c.X[2])
	}
	if c.DecodeStats.Decodes < 2 {
		t.Fatalf("expected a redecode after the patch, decode stats: %+v", c.DecodeStats)
	}
}

// TestUnmapRemapInvalidates replaces the mapping under an executed page
// (fresh frame, different code at the same virtual address) and checks the
// CPU does not execute stale decoded instructions.
func TestUnmapRemapInvalidates(t *testing.T) {
	c := newTestCPU(t)
	load(t, c, []isa.Inst{
		{Op: isa.ADDI, Ra: 2, Rb: 0, Imm: 7},
		{Op: isa.BREAK},
	})
	run(t, c)
	if c.X[2] != 7 {
		t.Fatalf("first program: r2 = %d", c.X[2])
	}

	// mmap MAP_FIXED-style replacement: same VA, new demand-zero pages.
	if err := c.AS.Map(codeVA, 4*vm.PageSize, vm.ProtRead|vm.ProtExec|vm.ProtWrite, true); err != nil {
		t.Fatal(err)
	}
	load(t, c, []isa.Inst{
		{Op: isa.ADDI, Ra: 2, Rb: 0, Imm: 9},
		{Op: isa.BREAK},
	})
	c.PC = codeVA
	run(t, c)
	if c.X[2] != 9 {
		t.Fatalf("remapped program: r2 = %d, want 9 (stale decode cache?)", c.X[2])
	}
}

// TestProtectRemovingExecFaults models mprotect(PROT_READ): even with a
// valid decoded block for the page, the next fetch must raise a protection
// page fault, and restoring PROT_EXEC must make it runnable again.
func TestProtectRemovingExecFaults(t *testing.T) {
	c := newTestCPU(t)
	load(t, c, []isa.Inst{
		{Op: isa.ADDI, Ra: 2, Rb: 0, Imm: 3},
		{Op: isa.ADDI, Ra: 2, Rb: 2, Imm: 4},
		{Op: isa.BREAK},
	})
	// Prime the decode cache for the page.
	run(t, c)
	if c.X[2] != 7 {
		t.Fatalf("r2 = %d", c.X[2])
	}

	if err := c.AS.Protect(codeVA, vm.PageSize, vm.ProtRead); err != nil {
		t.Fatal(err)
	}
	c.PC = codeVA
	tr := c.Run(10)
	if tr == nil || tr.Kind != TrapPageFault || tr.Page.Kind != vm.FaultProt {
		t.Fatalf("want protection fault after mprotect, got %v", tr)
	}

	if err := c.AS.Protect(codeVA, vm.PageSize, vm.ProtRead|vm.ProtExec|vm.ProtWrite); err != nil {
		t.Fatal(err)
	}
	c.PC = codeVA
	c.X[2] = 0
	run(t, c)
	if c.X[2] != 7 {
		t.Fatalf("after restoring exec: r2 = %d", c.X[2])
	}
}

// TestSyncICacheDropsBlocks checks the explicit flush half of the
// invalidation protocol.
func TestSyncICacheDropsBlocks(t *testing.T) {
	c := newTestCPU(t)
	load(t, c, []isa.Inst{{Op: isa.BREAK}})
	run(t, c)
	if c.DecodeStats.Decodes == 0 {
		t.Fatal("no page was decoded")
	}
	c.SyncICache()
	if c.decoded != nil || c.latch.page != nil {
		t.Fatal("SyncICache left state behind")
	}
	c.PC = codeVA
	run(t, c) // must re-decode, not crash
	if c.DecodeStats.Flushes != 1 {
		t.Fatalf("flush count: %+v", c.DecodeStats)
	}
}

// TestMisalignedPCBypassesCache: a misaligned PC fetches the word at the
// raw (unaligned) address, which is not one of the page's decoded slots,
// so the fast path must step aside. Both cache modes must execute the
// exact same straddled bytes.
func TestMisalignedPCBypassesCache(t *testing.T) {
	exec := func(disable bool) (Stats, [isa.NumRegs]uint64, TrapKind) {
		c := newTestCPU(t)
		c.NoDecodeCache = disable
		load(t, c, []isa.Inst{
			{Op: isa.ADDI, Ra: 2, Rb: 0, Imm: 1},
			{Op: isa.BREAK},
		})
		// Prime the page's decoded block, then jump mid-instruction.
		run(t, c)
		c.PC = codeVA + 2
		tr := c.Run(20)
		kind := TrapKind(-1)
		if tr != nil {
			kind = tr.Kind
		}
		return c.Stats, c.X, kind
	}
	sOn, xOn, kOn := exec(false)
	sOff, xOff, kOff := exec(true)
	if sOn != sOff || xOn != xOff || kOn != kOff {
		t.Fatalf("misaligned execution diverged:\n on: trap=%v %+v\noff: trap=%v %+v", kOn, sOn, kOff, sOff)
	}
}

// TestDecodeCacheDifferentialSmoke runs a branchy, self-patching program
// under both cache modes and requires bit-identical Stats and registers.
func TestDecodeCacheDifferentialSmoke(t *testing.T) {
	exec := func(disable bool) (Stats, [isa.NumRegs]uint64) {
		c := newTestCPU(t)
		c.NoDecodeCache = disable
		patched := isa.MustEncode(isa.Inst{Op: isa.ADDI, Ra: 6, Rb: 6, Imm: 5})
		prog := []isa.Inst{
			{Op: isa.ADDI, Ra: 4, Rb: 0, Imm: 1},  // i = 1
			{Op: isa.ADDI, Ra: 5, Rb: 0, Imm: 50}, // limit
			{Op: isa.ADD, Ra: 2, Rb: 2, Rc: 4},    // loop: sum += i
			{Op: isa.ADDI, Ra: 6, Rb: 6, Imm: 1},  // patch target
			{Op: isa.ADDI, Ra: 4, Rb: 4, Imm: 1},  // i++
		}
		prog = append(prog, storeWordInsts(patched, codeVA+3*isa.InstSize)...)
		prog = append(prog,
			isa.Inst{Op: isa.BGE, Ra: 5, Rb: 4, Imm: -8}, // while limit >= i
			isa.Inst{Op: isa.BREAK},
		)
		load(t, c, prog)
		run(t, c)
		return c.Stats, c.X
	}
	sOn, xOn := exec(false)
	sOff, xOff := exec(true)
	if sOn != sOff {
		t.Fatalf("stats diverged:\n on: %+v\noff: %+v", sOn, sOff)
	}
	if xOn != xOff {
		t.Fatalf("registers diverged:\n on: %v\noff: %v", xOn, xOff)
	}
}

// TestDecodeCacheSharedFrames: two address spaces mapping the same frames
// (shared text) may both use the same decoded block; a write through one
// mapping must invalidate what the other executes.
func TestDecodeCacheSharedFrames(t *testing.T) {
	m := mem.New(16<<20, 16)
	sys := vm.NewSystem(m, 1<<20)
	c := New(m, cache.DefaultHierarchy(), cap.Format128)
	frames := sys.AllocFrames(1)

	as1 := sys.NewAddressSpace()
	as2 := sys.NewAddressSpace()
	for _, as := range []*vm.AddressSpace{as1, as2} {
		if err := as.MapFrames(codeVA, frames, vm.ProtRead|vm.ProtWrite|vm.ProtExec); err != nil {
			t.Fatal(err)
		}
	}
	write := func(as *vm.AddressSpace, idx int, in isa.Inst) {
		pa, pf := as.Translate(codeVA+uint64(idx)*isa.InstSize, vm.ProtWrite)
		if pf != nil {
			t.Fatal(pf)
		}
		m.Store(pa, isa.InstSize, uint64(isa.MustEncode(in)))
	}
	write(as1, 0, isa.Inst{Op: isa.ADDI, Ra: 2, Rb: 0, Imm: 11})
	write(as1, 1, isa.Inst{Op: isa.BREAK})

	runAS := func(as *vm.AddressSpace) uint64 {
		c.AS = as
		c.PCC = cap.Root(codeVA, vm.PageSize, cap.PermCode)
		c.DDC = cap.Null()
		c.PC = codeVA
		tr := c.Run(100)
		if tr == nil || tr.Kind != TrapBreak {
			t.Fatalf("unexpected trap %v", tr)
		}
		return c.X[2]
	}
	if got := runAS(as1); got != 11 {
		t.Fatalf("as1: r2 = %d", got)
	}
	if got := runAS(as2); got != 11 {
		t.Fatalf("as2: r2 = %d", got)
	}
	// Patch through as2; as1's next execution must see it.
	write(as2, 0, isa.Inst{Op: isa.ADDI, Ra: 2, Rb: 0, Imm: 13})
	if got := runAS(as1); got != 13 {
		t.Fatalf("as1 after cross-AS patch: r2 = %d (stale shared block?)", got)
	}
}
