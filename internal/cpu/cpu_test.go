package cpu

import (
	"testing"

	"cheriabi/internal/cache"
	"cheriabi/internal/cap"
	"cheriabi/internal/isa"
	"cheriabi/internal/mem"
	"cheriabi/internal/vm"
)

const (
	codeVA  = 0x10000
	dataVA  = 0x20000
	stackVA = 0x30000
)

func newTestCPU(t *testing.T) *CPU {
	t.Helper()
	m := mem.New(16<<20, 16)
	sys := vm.NewSystem(m, 1<<20)
	c := New(m, cache.DefaultHierarchy(), cap.Format128)
	c.AS = sys.NewAddressSpace()
	if err := c.AS.Map(codeVA, 4*vm.PageSize, vm.ProtRead|vm.ProtExec|vm.ProtWrite, false); err != nil {
		t.Fatal(err)
	}
	if err := c.AS.Map(dataVA, 4*vm.PageSize, vm.ProtRead|vm.ProtWrite, false); err != nil {
		t.Fatal(err)
	}
	if err := c.AS.Map(stackVA, 4*vm.PageSize, vm.ProtRead|vm.ProtWrite, false); err != nil {
		t.Fatal(err)
	}
	c.PCC = cap.Root(codeVA, 4*vm.PageSize, cap.PermCode|cap.PermSystemRegs)
	c.DDC = cap.Root(0, 1<<40, cap.PermData)
	c.C[isa.CSP] = cap.Root(stackVA, 4*vm.PageSize, cap.PermData)
	c.PC = codeVA
	return c
}

// load assembles insts into the code region starting at codeVA.
func load(t *testing.T, c *CPU, insts []isa.Inst) {
	t.Helper()
	for i, in := range insts {
		w, err := isa.Encode(in)
		if err != nil {
			t.Fatalf("inst %d (%v): %v", i, in, err)
		}
		va := uint64(codeVA) + uint64(i)*isa.InstSize
		pa, pf := c.AS.Translate(va, vm.ProtWrite)
		if pf != nil {
			t.Fatal(pf)
		}
		c.Mem.Store(pa, isa.InstSize, uint64(w))
	}
}

// run executes until the first trap and asserts it is a BREAK.
func run(t *testing.T, c *CPU) {
	t.Helper()
	tr := c.Run(1_000_000)
	if tr == nil {
		t.Fatal("instruction budget expired")
	}
	if tr.Kind != TrapBreak {
		t.Fatalf("unexpected trap: %v", tr)
	}
}

func TestArithmetic(t *testing.T) {
	c := newTestCPU(t)
	load(t, c, []isa.Inst{
		{Op: isa.ADDI, Ra: 4, Rb: 0, Imm: 21},
		{Op: isa.ADDI, Ra: 5, Rb: 0, Imm: 2},
		{Op: isa.MUL, Ra: 2, Rb: 4, Rc: 5},
		{Op: isa.BREAK},
	})
	run(t, c)
	if c.X[2] != 42 {
		t.Fatalf("r2 = %d, want 42", c.X[2])
	}
}

func TestLoopSum(t *testing.T) {
	c := newTestCPU(t)
	// sum = 0; for i = 1; i <= 10; i++ { sum += i }
	load(t, c, []isa.Inst{
		{Op: isa.ADDI, Ra: 4, Rb: 0, Imm: 1},  // i = 1
		{Op: isa.ADDI, Ra: 5, Rb: 0, Imm: 10}, // limit
		{Op: isa.ADDI, Ra: 2, Rb: 0, Imm: 0},  // sum = 0
		{Op: isa.ADD, Ra: 2, Rb: 2, Rc: 4},    // loop: sum += i
		{Op: isa.ADDI, Ra: 4, Rb: 4, Imm: 1},  // i++
		{Op: isa.BGE, Ra: 5, Rb: 4, Imm: -2},  // if limit >= i goto loop
		{Op: isa.BREAK},
	})
	run(t, c)
	if c.X[2] != 55 {
		t.Fatalf("sum = %d, want 55", c.X[2])
	}
	if c.Stats.Branches == 0 || c.Stats.Taken == 0 {
		t.Fatalf("branch stats not counted: %+v", c.Stats)
	}
}

func TestZeroRegisterHardwired(t *testing.T) {
	c := newTestCPU(t)
	load(t, c, []isa.Inst{
		{Op: isa.ADDI, Ra: 0, Rb: 0, Imm: 99},
		{Op: isa.BREAK},
	})
	run(t, c)
	if c.X[0] != 0 {
		t.Fatal("r0 was written")
	}
}

func TestLegacyLoadStoreViaDDC(t *testing.T) {
	c := newTestCPU(t)
	load(t, c, []isa.Inst{
		{Op: isa.LUI, Ra: 8, Imm: dataVA >> 14}, // r8 = dataVA
		{Op: isa.ADDI, Ra: 9, Rb: 0, Imm: 1234},
		{Op: isa.SD, Ra: 9, Rb: 8, Imm: 8},
		{Op: isa.LD, Ra: 2, Rb: 8, Imm: 8},
		{Op: isa.BREAK},
	})
	run(t, c)
	if c.X[2] != 1234 {
		t.Fatalf("r2 = %d", c.X[2])
	}
}

func TestNullDDCBlocksLegacyAccess(t *testing.T) {
	c := newTestCPU(t)
	c.DDC = cap.Null() // CheriABI: all memory access must be intentional
	load(t, c, []isa.Inst{
		{Op: isa.LUI, Ra: 8, Imm: dataVA >> 14},
		{Op: isa.LD, Ra: 2, Rb: 8, Imm: 0},
		{Op: isa.BREAK},
	})
	tr := c.Run(100)
	if tr == nil || tr.Kind != TrapCapFault || tr.Cap.Cause != cap.FaultTag {
		t.Fatalf("want tag fault through NULL DDC, got %v", tr)
	}
}

func TestCapLoadStoreBounded(t *testing.T) {
	c := newTestCPU(t)
	c.C[3] = cap.Root(dataVA, 64, cap.PermData)
	load(t, c, []isa.Inst{
		{Op: isa.ADDI, Ra: 9, Rb: 0, Imm: -7},
		{Op: isa.CSD, Ra: 9, Rb: 3, Imm: 16},
		{Op: isa.CLD, Ra: 2, Rb: 3, Imm: 16},
		{Op: isa.CLW, Ra: 10, Rb: 3, Imm: 16}, // sign-extending word load
		{Op: isa.BREAK},
	})
	run(t, c)
	if int64(c.X[2]) != -7 {
		t.Fatalf("r2 = %d", int64(c.X[2]))
	}
	if int64(c.X[10]) != -7 {
		t.Fatalf("clw sign extension: %d", int64(c.X[10]))
	}
}

func TestCapBoundsViolationTraps(t *testing.T) {
	c := newTestCPU(t)
	c.C[3] = cap.Root(dataVA, 64, cap.PermData)
	load(t, c, []isa.Inst{
		{Op: isa.CLD, Ra: 2, Rb: 3, Imm: 64}, // one byte past the top
		{Op: isa.BREAK},
	})
	tr := c.Run(100)
	if tr == nil || tr.Kind != TrapCapFault || tr.Cap.Cause != cap.FaultBounds {
		t.Fatalf("want bounds fault, got %v", tr)
	}
	if tr.PC != codeVA {
		t.Fatalf("trap PC = %x, want %x (precise exception)", tr.PC, codeVA)
	}
}

func TestCapabilityRoundTripThroughMemory(t *testing.T) {
	c := newTestCPU(t)
	c.C[3] = cap.Root(dataVA, 4096, cap.PermData)
	c.C[4] = cap.Root(dataVA+128, 32, cap.PermRO)
	load(t, c, []isa.Inst{
		{Op: isa.CSC, Ra: 4, Rb: 3, Imm: 16},
		{Op: isa.CLC, Ra: 5, Rb: 3, Imm: 16},
		{Op: isa.BREAK},
	})
	run(t, c)
	if !c.C[5].Equal(c.C[4]) {
		t.Fatalf("capability corrupted:\n in: %v\nout: %v", c.C[4], c.C[5])
	}
	if c.Stats.CapLoads != 1 || c.Stats.CapStores != 1 {
		t.Fatalf("cap access stats: %+v", c.Stats)
	}
}

func TestDataStoreClearsStoredCapTag(t *testing.T) {
	c := newTestCPU(t)
	c.C[3] = cap.Root(dataVA, 4096, cap.PermData)
	c.C[4] = cap.Root(dataVA+128, 32, cap.PermData)
	load(t, c, []isa.Inst{
		{Op: isa.CSC, Ra: 4, Rb: 3, Imm: 16}, // store capability
		{Op: isa.ADDI, Ra: 9, Rb: 0, Imm: 1},
		{Op: isa.CSD, Ra: 9, Rb: 3, Imm: 24}, // overwrite half of it with data
		{Op: isa.CLC, Ra: 5, Rb: 3, Imm: 16}, // reload
		{Op: isa.BREAK},
	})
	run(t, c)
	if c.C[5].Tag() {
		t.Fatal("tag survived a data overwrite: capability forged")
	}
}

func TestLoadCapWithoutPermLoadCapStripsTag(t *testing.T) {
	c := newTestCPU(t)
	full := cap.Root(dataVA, 4096, cap.PermData)
	c.C[3] = full
	c.C[4] = cap.Root(dataVA+128, 32, cap.PermData)
	c.C[6] = full.ClearPerms(cap.PermLoadCap)
	load(t, c, []isa.Inst{
		{Op: isa.CSC, Ra: 4, Rb: 3, Imm: 0},
		{Op: isa.CLC, Ra: 5, Rb: 6, Imm: 0}, // load via no-loadcap authority
		{Op: isa.BREAK},
	})
	run(t, c)
	if c.C[5].Tag() {
		t.Fatal("tag crossed a no-LoadCap capability")
	}
	if c.C[5].Addr() != c.C[4].Addr() {
		t.Fatal("address bits should still arrive")
	}
}

func TestCSetBoundsTrapsOnWiden(t *testing.T) {
	c := newTestCPU(t)
	c.C[3] = cap.Root(dataVA, 64, cap.PermData)
	load(t, c, []isa.Inst{
		{Op: isa.ADDI, Ra: 8, Rb: 0, Imm: 128}, // length 128 > 64
		{Op: isa.CSETBNDS, Ra: 4, Rb: 3, Rc: 8},
		{Op: isa.BREAK},
	})
	tr := c.Run(100)
	if tr == nil || tr.Kind != TrapCapFault || tr.Cap.Cause != cap.FaultLength {
		t.Fatalf("want length fault, got %v", tr)
	}
}

func TestCapFunctionCall(t *testing.T) {
	c := newTestCPU(t)
	// main: cjalr c17, c12 ; break     callee at codeVA+0x100: addi r2,r0,7 ; cjr c17
	target := c.Fmt.SetAddr(c.PCC, codeVA+0x100)
	c.C[12] = target
	load(t, c, []isa.Inst{
		{Op: isa.CJALR, Ra: 17, Rb: 12},
		{Op: isa.BREAK},
	})
	callee := []isa.Inst{
		{Op: isa.ADDI, Ra: 2, Rb: 0, Imm: 7},
		{Op: isa.CJR, Ra: 17},
	}
	for i, in := range callee {
		pa, _ := c.AS.Translate(codeVA+0x100+uint64(i)*4, vm.ProtWrite)
		c.Mem.Store(pa, 4, uint64(isa.MustEncode(in)))
	}
	run(t, c)
	if c.X[2] != 7 {
		t.Fatalf("r2 = %d", c.X[2])
	}
	if !c.C[17].Tag() || c.C[17].Addr() != codeVA+4 {
		t.Fatalf("link capability wrong: %v", c.C[17])
	}
}

func TestExecuteOutsidePCCBoundsTraps(t *testing.T) {
	c := newTestCPU(t)
	c.PCC = cap.Root(codeVA, 8, cap.PermCode) // only two instructions
	load(t, c, []isa.Inst{
		{Op: isa.NOP},
		{Op: isa.NOP},
		{Op: isa.BREAK},
	})
	tr := c.Run(100)
	if tr == nil || tr.Kind != TrapCapFault || tr.Cap.Cause != cap.FaultBounds {
		t.Fatalf("want fetch bounds fault, got %v", tr)
	}
}

func TestSyscallTrap(t *testing.T) {
	c := newTestCPU(t)
	load(t, c, []isa.Inst{
		{Op: isa.ADDI, Ra: 2, Rb: 0, Imm: 42},
		{Op: isa.SYSCALL},
		{Op: isa.BREAK},
	})
	tr := c.Run(100)
	if tr == nil || tr.Kind != TrapSyscall {
		t.Fatalf("want syscall trap, got %v", tr)
	}
	if c.X[2] != 42 {
		t.Fatal("syscall number lost")
	}
	// Kernel resumes after the syscall instruction.
	c.PC = tr.PC + isa.InstSize
	run(t, c)
}

func TestNCallTrap(t *testing.T) {
	c := newTestCPU(t)
	load(t, c, []isa.Inst{
		{Op: isa.NCALL, Imm: 17},
		{Op: isa.BREAK},
	})
	tr := c.Run(100)
	if tr == nil || tr.Kind != TrapNCall || tr.NCall != 17 {
		t.Fatalf("want ncall 17, got %v", tr)
	}
}

func TestMisalignedAccessTraps(t *testing.T) {
	c := newTestCPU(t)
	c.C[3] = cap.Root(dataVA, 64, cap.PermData)
	load(t, c, []isa.Inst{
		{Op: isa.CLD, Ra: 2, Rb: 3, Imm: 4}, // 8-byte load at offset 4
		{Op: isa.BREAK},
	})
	tr := c.Run(100)
	if tr == nil || tr.Kind != TrapAlignment {
		t.Fatalf("want alignment trap, got %v", tr)
	}
}

func TestUnmappedAccessPageFaults(t *testing.T) {
	c := newTestCPU(t)
	c.C[3] = cap.Root(0x900000, 64, cap.PermData) // valid cap, no mapping
	load(t, c, []isa.Inst{
		{Op: isa.CLD, Ra: 2, Rb: 3, Imm: 0},
		{Op: isa.BREAK},
	})
	tr := c.Run(100)
	if tr == nil || tr.Kind != TrapPageFault {
		t.Fatalf("want page fault, got %v", tr)
	}
}

func TestCGetters(t *testing.T) {
	c := newTestCPU(t)
	c.C[3] = cap.Root(dataVA, 256, cap.PermRO)
	load(t, c, []isa.Inst{
		{Op: isa.CGETBASE, Ra: 8, Rb: 3},
		{Op: isa.CGETLEN, Ra: 9, Rb: 3},
		{Op: isa.CGETTAG, Ra: 10, Rb: 3},
		{Op: isa.CGETPERM, Ra: 11, Rb: 3},
		{Op: isa.CGETADDR, Ra: 12, Rb: 3},
		{Op: isa.CINCOFFI, Ra: 4, Rb: 3, Imm: 8},
		{Op: isa.CGETOFF, Ra: 13, Rb: 4},
		{Op: isa.BREAK},
	})
	run(t, c)
	if c.X[8] != dataVA || c.X[9] != 256 || c.X[10] != 1 || c.X[12] != dataVA || c.X[13] != 8 {
		t.Fatalf("getters: base=%x len=%d tag=%d addr=%x off=%d", c.X[8], c.X[9], c.X[10], c.X[12], c.X[13])
	}
	if cap.Perm(c.X[11]) != cap.PermRO {
		t.Fatalf("perms = %v", cap.Perm(c.X[11]))
	}
}

func TestCRRLAndCRAM(t *testing.T) {
	c := newTestCPU(t)
	load(t, c, []isa.Inst{
		{Op: isa.LUI, Ra: 8, Imm: 1 << 7}, // 1<<21
		{Op: isa.ADDI, Ra: 8, Rb: 8, Imm: 3},
		{Op: isa.CRRL, Ra: 9, Rb: 8},
		{Op: isa.CRAM, Ra: 10, Rb: 8},
		{Op: isa.BREAK},
	})
	run(t, c)
	want := cap.Format128.RepresentableLength(1<<21 + 3)
	if c.X[9] != want {
		t.Fatalf("CRRL = %d, want %d", c.X[9], want)
	}
	if c.X[10] != cap.Format128.RepresentableAlignmentMask(1<<21+3) {
		t.Fatalf("CRAM = %x", c.X[10])
	}
}

type recordingTracer struct {
	stack, other int
}

func (r *recordingTracer) DeriveStack(cap.Capability, uint64) { r.stack++ }
func (r *recordingTracer) DeriveOther(cap.Capability, uint64) { r.other++ }

func TestTracerClassifiesStackDerivations(t *testing.T) {
	c := newTestCPU(t)
	tr := &recordingTracer{}
	c.Tracer = tr
	c.C[3] = cap.Root(dataVA, 4096, cap.PermData)
	load(t, c, []isa.Inst{
		{Op: isa.ADDI, Ra: 8, Rb: 0, Imm: 16},
		{Op: isa.CSETBNDS, Ra: 4, Rb: isa.CSP, Rc: 8}, // stack-derived
		{Op: isa.CSETBNDS, Ra: 5, Rb: 3, Rc: 8},       // other
		{Op: isa.BREAK},
	})
	run(t, c)
	if tr.stack != 1 || tr.other != 1 {
		t.Fatalf("tracer: stack=%d other=%d", tr.stack, tr.other)
	}
}

func TestReservedInstruction(t *testing.T) {
	c := newTestCPU(t)
	pa, _ := c.AS.Translate(codeVA, vm.ProtWrite)
	c.Mem.Store(pa, 4, 0xFE) // unknown opcode
	tr := c.Run(10)
	if tr == nil || tr.Kind != TrapReserved {
		t.Fatalf("want reserved trap, got %v", tr)
	}
}

func TestCFromPtrAndCToPtr(t *testing.T) {
	c := newTestCPU(t)
	c.C[3] = cap.Root(dataVA, 4096, cap.PermData)
	load(t, c, []isa.Inst{
		{Op: isa.ADDI, Ra: 8, Rb: 0, Imm: 100},
		{Op: isa.CFROMPTR, Ra: 4, Rb: 3, Rc: 8}, // c4 = c3 @ base+100
		{Op: isa.CTOPTR, Ra: 9, Rb: 4, Rc: 3},   // r9 = 100
		{Op: isa.CFROMPTR, Ra: 5, Rb: 3, Rc: 0}, // NULL
		{Op: isa.BREAK},
	})
	run(t, c)
	if c.X[9] != 100 {
		t.Fatalf("ctoptr = %d", c.X[9])
	}
	if c.C[5].Tag() {
		t.Fatal("cfromptr(0) must be NULL")
	}
	if !c.C[4].Tag() || c.C[4].Addr() != dataVA+100 {
		t.Fatalf("cfromptr: %v", c.C[4])
	}
}

// Kernel-style bulk copyin/copyout through user capabilities is covered
// by internal/uaccess, which owns the page-run bulk access engine.

func TestMul128(t *testing.T) {
	hi, lo := mul128(0xFFFFFFFFFFFFFFFF, 0xFFFFFFFFFFFFFFFF)
	if hi != 0xFFFFFFFFFFFFFFFE || lo != 1 {
		t.Fatalf("mul128 = %x %x", hi, lo)
	}
	hi, _ = mul128(1<<32, 1<<32)
	if hi != 1 {
		t.Fatalf("mul128 hi = %x", hi)
	}
}

func TestCyclesExceedInstructions(t *testing.T) {
	c := newTestCPU(t)
	load(t, c, []isa.Inst{
		{Op: isa.ADDI, Ra: 4, Rb: 0, Imm: 1},
		{Op: isa.BREAK},
	})
	run(t, c)
	if c.Stats.Cycles < c.Stats.Instructions {
		t.Fatalf("cycles %d < instructions %d", c.Stats.Cycles, c.Stats.Instructions)
	}
}
