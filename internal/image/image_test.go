package image

import (
	"testing"

	"cheriabi/internal/vm"
)

func sample() *Image {
	return &Image{
		Name:   "libsample.so",
		ABI:    ABICheri,
		Code:   []uint32{1, 2, 3, 4},
		ROData: []byte("hello"),
		Data:   []byte{9, 9, 9},
		BSS:    64,
		Entry:  "_start",
		Symbols: map[string]*Symbol{
			"f":  {Name: "f", Kind: SymFunc, Sec: SecText, Off: 0, Size: 8, Global: true},
			"g":  {Name: "g", Kind: SymObject, Sec: SecData, Off: 0, Size: 3, Global: true},
			"$s": {Name: "$s", Kind: SymObject, Sec: SecROData, Off: 0, Size: 5},
		},
		GOT: []GOTEntry{
			{Sym: "f", Kind: GOTFunc, Slot: 0},
			{Sym: "g", Kind: GOTData, Slot: 2},
			{Sym: "$s", Kind: GOTData, Slot: 3},
		},
		GOTSlots:  4,
		CapRelocs: []CapReloc{{Off: 0, Target: "$s"}},
		Needed:    []string{"libc.so"},
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	img := sample()
	b, err := img.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != img.Name || got.ABI != img.ABI || len(got.Code) != 4 || got.BSS != 64 {
		t.Fatalf("round trip lost fields: %+v", got)
	}
	if got.Lookup("f") == nil || got.Lookup("f").Kind != SymFunc {
		t.Fatal("symbol table lost")
	}
	if e := got.GOTEntryFor("g"); e == nil || e.Slot != 2 {
		t.Fatal("GOT lost")
	}
	if len(got.CapRelocs) != 1 || got.CapRelocs[0].Target != "$s" {
		t.Fatal("cap relocs lost")
	}
}

func TestLayoutPageSeparation(t *testing.T) {
	img := sample()
	l := img.Layout(16)
	if l.TextOff != 0 || l.TextSize != 16 {
		t.Fatalf("text: %+v", l)
	}
	for _, off := range []uint64{l.ROOff, l.GOTOff, l.DataOff, l.Total} {
		if off%vm.PageSize != 0 {
			t.Fatalf("offset %#x not page aligned", off)
		}
	}
	if !(l.TextOff < l.ROOff && l.ROOff < l.GOTOff && l.GOTOff < l.DataOff) {
		t.Fatalf("sections out of order: %+v", l)
	}
	if l.GOTSize != 4*16 {
		t.Fatalf("purecap GOT size = %d", l.GOTSize)
	}
	if l.DataSize != 3+64 {
		t.Fatalf("data size = %d", l.DataSize)
	}
}

func TestLayoutLegacySlotSize(t *testing.T) {
	img := sample()
	img.ABI = ABILegacy
	l := img.Layout(16)
	if l.GOTSize != 4*8 {
		t.Fatalf("legacy GOT size = %d", l.GOTSize)
	}
}

func TestGOTEntrySlots(t *testing.T) {
	if (GOTEntry{Kind: GOTFunc}).Slots() != 2 {
		t.Fatal("function descriptors take two slots")
	}
	if (GOTEntry{Kind: GOTData}).Slots() != 1 {
		t.Fatal("data entries take one slot")
	}
}

func TestABIHelpers(t *testing.T) {
	if ABICheri.PtrSize(16) != 16 || ABILegacy.PtrSize(16) != 8 {
		t.Fatal("pointer sizes wrong")
	}
	if ABICheri.String() != "cheriabi" || ABILegacy.String() != "mips64" {
		t.Fatal("ABI names wrong")
	}
	if SecText.String() != "text" || SecBSS.String() != "bss" {
		t.Fatal("section names wrong")
	}
}

func TestEmptyImageLayout(t *testing.T) {
	img := &Image{Name: "empty", ABI: ABICheri}
	l := img.Layout(16)
	if l.Total == 0 {
		t.Fatal("empty image must still occupy a page")
	}
}
