// Package image defines the simulator's executable and shared-library
// format ("CELF"). Like ELF on CheriBSD, an on-disk image carries no
// capabilities — tags do not survive storage — so pointer initialisation
// is described by tables the run-time linker processes at load time:
// GOT entries ("new dynamic relocations that initialize and bound the
// capability") and capability relocations for global variables containing
// pointers ("Global variables containing pointers are initialized during
// process startup, as tags are not preserved on disk").
package image

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"cheriabi/internal/vm"
)

// ABI selects the process ABI an image is compiled for.
type ABI int

// Process ABIs.
const (
	// ABILegacy is the mips64-flavoured SysV ABI: pointers are 8-byte
	// integers checked only against DDC.
	ABILegacy ABI = iota
	// ABICheri is CheriABI: all pointers are capabilities, DDC is NULL.
	ABICheri
)

func (a ABI) String() string {
	if a == ABICheri {
		return "cheriabi"
	}
	return "mips64"
}

// PtrSize returns the in-memory pointer size for the ABI.
func (a ABI) PtrSize(capBytes uint64) uint64 {
	if a == ABICheri {
		return capBytes
	}
	return 8
}

// SectionID identifies a section within an image.
type SectionID int

// Sections.
const (
	SecText SectionID = iota
	SecROData
	SecData
	SecBSS
)

func (s SectionID) String() string {
	switch s {
	case SecText:
		return "text"
	case SecROData:
		return "rodata"
	case SecData:
		return "data"
	case SecBSS:
		return "bss"
	}
	return fmt.Sprintf("sec%d", int(s))
}

// SymKind distinguishes code from data symbols.
type SymKind int

// Symbol kinds.
const (
	SymObject SymKind = iota
	SymFunc
)

// Symbol is one defined symbol.
type Symbol struct {
	Name   string
	Kind   SymKind
	Sec    SectionID
	Off    uint64 // offset within the section
	Size   uint64
	Global bool // visible to other images
}

// GOTKind distinguishes the two GOT entry shapes.
type GOTKind int

// GOT entry kinds.
const (
	// GOTData is a single slot holding a bounded data capability (or, for
	// the legacy ABI, the variable's address).
	GOTData GOTKind = iota
	// GOTFunc is a two-slot function descriptor: [code capability,
	// defining image's GOT capability]. Cross-image calls and function
	// pointers go through descriptors so the callee receives its own
	// capability GOT.
	GOTFunc
)

// GOTEntry is one global-offset-table entry. Slot positions are assigned
// by the static linker and referenced by immediate offsets in code.
type GOTEntry struct {
	Sym  string
	Kind GOTKind
	Slot int // first slot index
}

// Slots returns the number of consecutive slots the entry occupies.
func (e GOTEntry) Slots() int {
	if e.Kind == GOTFunc {
		return 2
	}
	return 1
}

// CapReloc initialises a pointer stored in the data section: at load time
// the run-time linker writes a capability (or legacy address) for
// Target+Addend at Off within the data section. Function targets resolve
// to the image's descriptor for that function.
type CapReloc struct {
	Off    uint64 // location within SecData, pointer-aligned
	Target string
	Addend uint64
}

// Image is one linked executable or shared library.
type Image struct {
	Name   string
	ABI    ABI
	Code   []uint32 // encoded instructions
	ROData []byte
	Data   []byte
	BSS    uint64 // zero-initialised bytes following Data
	Entry  string // entry symbol for executables ("_start")

	Symbols   map[string]*Symbol
	GOT       []GOTEntry
	GOTSlots  int // total slots (functions use two)
	CapRelocs []CapReloc
	Needed    []string // shared-library dependencies, load order

	// ASan marks an AddressSanitizer-instrumented binary: execve maps the
	// shadow region for it.
	ASan bool
}

// Lookup returns the named symbol or nil.
func (img *Image) Lookup(name string) *Symbol { return img.Symbols[name] }

// GOTEntryFor returns the GOT entry for a symbol, or nil.
func (img *Image) GOTEntryFor(name string) *GOTEntry {
	for i := range img.GOT {
		if img.GOT[i].Sym == name {
			return &img.GOT[i]
		}
	}
	return nil
}

// Layout describes where each part of a loaded image sits, as offsets from
// the image base. Text, read-only data, the GOT, and writable data are
// page-separated so they can carry distinct page protections and
// capability bounds.
type Layout struct {
	TextOff, TextSize uint64
	ROOff, ROSize     uint64
	GOTOff, GOTSize   uint64
	DataOff, DataSize uint64 // includes BSS
	Total             uint64
}

func pageUp(v uint64) uint64 {
	return (v + vm.PageSize - 1) &^ (vm.PageSize - 1)
}

// Layout computes the load layout for the given capability size. The GOT
// is writable data (the linker fills it) but separated so its capability
// can be bounded exactly.
func (img *Image) Layout(capBytes uint64) Layout {
	slot := img.ABI.PtrSize(capBytes)
	var l Layout
	l.TextSize = uint64(len(img.Code)) * 4
	l.ROSize = uint64(len(img.ROData))
	l.GOTSize = uint64(img.GOTSlots) * slot
	l.DataSize = uint64(len(img.Data)) + img.BSS
	l.TextOff = 0
	l.ROOff = pageUp(l.TextSize)
	l.GOTOff = l.ROOff + pageUp(l.ROSize)
	l.DataOff = l.GOTOff + pageUp(l.GOTSize)
	l.Total = l.DataOff + pageUp(l.DataSize)
	if l.Total == 0 {
		l.Total = vm.PageSize
	}
	return l
}

// CodeSize returns the text size in bytes (the §5.2 code-size metric).
func (img *Image) CodeSize() uint64 { return uint64(len(img.Code)) * 4 }

// Marshal serialises the image to bytes for storage in the VFS. The
// encoding holds no capabilities, by construction.
func (img *Image) Marshal() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(img); err != nil {
		return nil, fmt.Errorf("image: marshal %s: %w", img.Name, err)
	}
	return buf.Bytes(), nil
}

// Unmarshal reads an image back from bytes.
func Unmarshal(b []byte) (*Image, error) {
	var img Image
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&img); err != nil {
		return nil, fmt.Errorf("image: unmarshal: %w", err)
	}
	return &img, nil
}
