package cheriabi_test

// AF_INET + network-fabric tests: the socket-domain errno contract, the
// listen(2) backlog bound in both address families, the single-machine
// loopback workload, and the multi-machine load-generator fleet — whose
// whole observable state (per-node output, exit, Stats, clocks, and the
// fabric delivery-trace hash) must be bit-identical across same-seed
// repeats, while adjacent seeds reshuffle latencies without touching any
// byte-stream checksum.

import (
	"testing"

	"cheriabi"
	"cheriabi/internal/workload"
)

// runGuest compiles src for abi and runs it on a cold-booted machine.
func runGuest(t *testing.T, abi cheriabi.ABI, name, src string, args ...string) *cheriabi.RunResult {
	t.Helper()
	img, _, err := cheriabi.Compile(cheriabi.CompileOptions{Name: name, ABI: abi}, src)
	if err != nil {
		t.Fatalf("compile %s: %v", name, err)
	}
	sys := cheriabi.NewSystem(cheriabi.Config{MemBytes: 128 << 20})
	res, err := sys.RunImage(img, append([]string{name}, args...)...)
	if err != nil {
		t.Fatalf("run %s: %v", name, err)
	}
	return res
}

var inetABIs = []struct {
	label string
	abi   cheriabi.ABI
}{
	{"mips64", cheriabi.ABILegacy},
	{"cheriabi", cheriabi.ABICheri},
}

// TestSocketDomainErrnos pins the socket(2) domain/type contract under
// both ABIs: AF_UNIX and AF_INET stream sockets succeed, an unknown
// domain is EAFNOSUPPORT (47), a non-stream type or non-default protocol
// is EINVAL (22), and socketpair remains AF_UNIX-only.
func TestSocketDomainErrnos(t *testing.T) {
	const src = `
int sv[2];
int main() {
	int u = socket(1, 1, 0);
	if (u < 0) return 1;
	close(u);
	int n = socket(2, 1, 0);
	if (n < 0) return 2;
	close(n);
	if (socket(9, 1, 0) >= 0) return 3;
	if (errno() != 47) return 4;
	if (socket(0, 1, 0) >= 0) return 5;
	if (errno() != 47) return 6;
	if (socket(2, 2, 0) >= 0) return 7;
	if (errno() != 22) return 8;
	if (socket(1, 1, 6) >= 0) return 9;
	if (errno() != 22) return 10;
	if (socketpair(2, 1, 0, sv) == 0) return 11;
	if (errno() != 47) return 12;
	printf("domains ok\n");
	return 0;
}
`
	for _, a := range inetABIs {
		res := runGuest(t, a.abi, "sock-domains", src)
		if res.ExitCode != 0 || res.Signal != 0 {
			t.Errorf("%s: exit %d signal %d (output %q)", a.label, res.ExitCode, res.Signal, res.Output)
		}
		if res.Output != "domains ok\n" {
			t.Errorf("%s: output %q", a.label, res.Output)
		}
	}
}

// TestListenBacklogRefused pins listen(2)'s backlog as a hard bound in
// both families: two connects fill a backlog of 2, the third is refused
// with ECONNREFUSED (never queued), and once accept drains the queue the
// refused socket reconnects successfully.
func TestListenBacklogRefused(t *testing.T) {
	const src = `
struct sockaddr_in { int family; int port; int addr; };
int main() {
	// AF_UNIX.
	int l = socket(1, 1, 0);
	if (bind(l, "/tmp/bl.sock") != 0) return 1;
	if (listen(l, 2) != 0) return 2;
	int c1 = socket(1, 1, 0); fcntl(c1, 4, 4);
	int c2 = socket(1, 1, 0); fcntl(c2, 4, 4);
	int c3 = socket(1, 1, 0);
	if (connect(c1, "/tmp/bl.sock") == 0 || errno() != 36) return 3;
	if (connect(c2, "/tmp/bl.sock") == 0 || errno() != 36) return 4;
	if (connect(c3, "/tmp/bl.sock") == 0) return 5; // beyond the backlog
	if (errno() != 61) return 6;                    // refused, not queued
	int a1 = accept(l);
	if (a1 < 0) return 7;                           // drains one slot
	fcntl(c3, 4, 4);
	if (connect(c3, "/tmp/bl.sock") == 0 || errno() != 36) return 8;
	int a2 = accept(l);
	int a3 = accept(l);
	if (a2 < 0 || a3 < 0) return 9;
	if (connect(c1, "/tmp/bl.sock") != 0) return 10; // completion report
	close(c1); close(c2); close(c3);
	close(a1); close(a2); close(a3); close(l);

	// AF_INET, same shape over the loopback NIC.
	struct sockaddr_in sa[1];
	sa[0].family = 2; sa[0].port = 7200; sa[0].addr = 0;
	int il = socket(2, 1, 0);
	if (bind(il, sa) != 0) return 11;
	if (listen(il, 2) != 0) return 12;
	sa[0].addr = 2130706433;
	int i1 = socket(2, 1, 0); fcntl(i1, 4, 4);
	int i2 = socket(2, 1, 0); fcntl(i2, 4, 4);
	int i3 = socket(2, 1, 0);
	if (connect(i1, sa) == 0 || errno() != 36) return 13;
	if (connect(i2, sa) == 0 || errno() != 36) return 14;
	if (connect(i3, sa) == 0) return 15;
	if (errno() != 61) return 16;
	int b1 = accept(il);
	if (b1 < 0) return 17;
	fcntl(i3, 4, 4);
	if (connect(i3, sa) == 0 || errno() != 36) return 18;
	int b2 = accept(il);
	int b3 = accept(il);
	if (b2 < 0 || b3 < 0) return 19;
	if (connect(i1, sa) != 0) return 20;
	close(i1); close(i2); close(i3);
	close(b1); close(b2); close(b3); close(il);
	printf("backlog ok\n");
	return 0;
}
`
	for _, a := range inetABIs {
		res := runGuest(t, a.abi, "sock-backlog", src)
		if res.ExitCode != 0 || res.Signal != 0 {
			t.Errorf("%s: exit %d signal %d (output %q)", a.label, res.ExitCode, res.Signal, res.Output)
		}
		if res.Output != "backlog ok\n" {
			t.Errorf("%s: output %q", a.label, res.Output)
		}
	}
}

// TestPosixInetWorkload runs the single-machine AF_INET workload under
// both ABIs: same checks, same output (the differential matrix extends
// this to the full fast-path configuration grid).
func TestPosixInetWorkload(t *testing.T) {
	w, ok := workload.ByName("posix-inet")
	if !ok {
		t.Fatal("posix-inet missing from Figure 4")
	}
	var outputs []string
	for _, a := range inetABIs {
		res := runGuest(t, a.abi, w.Name, w.Src)
		if res.ExitCode != 0 || res.Signal != 0 {
			t.Fatalf("%s: exit %d signal %d (output %q)", a.label, res.ExitCode, res.Signal, res.Output)
		}
		outputs = append(outputs, res.Output)
	}
	if outputs[0] != outputs[1] {
		t.Errorf("ABI outputs diverged:\nmips64:   %q\ncheriabi: %q", outputs[0], outputs[1])
	}
	const want = "inet ok csum 84 srv 14 nb 11\n"
	if outputs[0] != want {
		t.Errorf("output %q, want %q", outputs[0], want)
	}
}

// loadGenFidelity compares two load-generator runs bit for bit.
func loadGenFidelity(t *testing.T, label string, a, b *workload.LoadGenResult) {
	t.Helper()
	if a.Fleet.TraceHash != b.Fleet.TraceHash {
		t.Errorf("%s: trace hash %x vs %x", label, a.Fleet.TraceHash, b.Fleet.TraceHash)
	}
	if a.Fleet.Delivered != b.Fleet.Delivered || a.Fleet.DataBytes != b.Fleet.DataBytes {
		t.Errorf("%s: delivered/bytes %d/%d vs %d/%d", label,
			a.Fleet.Delivered, a.Fleet.DataBytes, b.Fleet.Delivered, b.Fleet.DataBytes)
	}
	if a.P50 != b.P50 || a.P99 != b.P99 {
		t.Errorf("%s: percentiles p50=%d p99=%d vs p50=%d p99=%d", label, a.P50, a.P99, b.P50, b.P99)
	}
	for i := range a.Fleet.Nodes {
		na, nb := a.Fleet.Nodes[i], b.Fleet.Nodes[i]
		if na.Output != nb.Output {
			t.Errorf("%s: node %d output diverged:\n%q\n%q", label, i, na.Output, nb.Output)
		}
		if na.ExitCode != nb.ExitCode || na.Signal != nb.Signal {
			t.Errorf("%s: node %d termination %d/%d vs %d/%d", label, i, na.ExitCode, na.Signal, nb.ExitCode, nb.Signal)
		}
		if na.Stats != nb.Stats {
			t.Errorf("%s: node %d stats diverged:\n%+v\n%+v", label, i, na.Stats, nb.Stats)
		}
		if na.Cycles != nb.Cycles {
			t.Errorf("%s: node %d final clock %d vs %d", label, i, na.Cycles, nb.Cycles)
		}
	}
}

// TestFleetDeterminism is the multi-machine acceptance gate: one server
// plus four client machines, 32 connections, ≥1000 requests (cut down
// under -short). Two same-seed runs must match bit for bit — every
// node's output, termination, Stats, and final clock, and the fabric's
// delivery-trace hash — and an adjacent seed must reshuffle the delivery
// schedule (different trace, different latencies) while leaving every
// byte-stream checksum untouched.
func TestFleetDeterminism(t *testing.T) {
	spec := workload.LoadGenSpec{
		ABI:      cheriabi.ABICheri,
		Clients:  4,
		Conns:    8,
		Requests: 32, // 4 x 8 x 32 = 1024 requests
		Seed:     1,
	}
	if testing.Short() {
		spec.Requests = 4
	}
	a, err := workload.LoadGen(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := workload.LoadGen(spec)
	if err != nil {
		t.Fatal(err)
	}
	loadGenFidelity(t, "same-seed", a, b)

	spec.Seed = 2
	c, err := workload.LoadGen(spec)
	if err != nil {
		t.Fatal(err)
	}
	if c.Fleet.TraceHash == a.Fleet.TraceHash {
		t.Errorf("adjacent seeds produced the same delivery trace %x", a.Fleet.TraceHash)
	}
	if len(c.Checksums) != len(a.Checksums) {
		t.Fatalf("checksum line counts diverged: %d vs %d", len(a.Checksums), len(c.Checksums))
	}
	for i := range a.Checksums {
		if a.Checksums[i] != c.Checksums[i] {
			t.Errorf("seed-dependent checksum: %q vs %q", a.Checksums[i], c.Checksums[i])
		}
	}
	if a.Requests != c.Requests {
		t.Errorf("request counts diverged across seeds: %d vs %d", a.Requests, c.Requests)
	}
}

// TestFleetEchoCrossMachine is the two-machine smoke test: a server and
// one client machine exchanging 512-byte records through the fabric,
// under both ABIs.
func TestFleetEchoCrossMachine(t *testing.T) {
	for _, a := range inetABIs {
		res, err := workload.FleetEcho(a.abi, 1, 16, 7)
		if err != nil {
			t.Fatalf("%s: %v", a.label, err)
		}
		for i, n := range res.Nodes {
			if n.ExitCode != 0 || n.Signal != 0 {
				t.Errorf("%s: node %d exit %d signal %d (output %q)", a.label, i, n.ExitCode, n.Signal, n.Output)
			}
		}
		if res.Nodes[0].Output != "server served 8192 conns 1\n" {
			t.Errorf("%s: server output %q", a.label, res.Nodes[0].Output)
		}
		if res.DataBytes != 2*16*512 {
			t.Errorf("%s: fabric moved %d payload bytes, want %d", a.label, res.DataBytes, 2*16*512)
		}
	}
}
