// Package cheriabi is a simulation-based reproduction of "CheriABI:
// Enforcing Valid Pointer Provenance and Minimizing Pointer Privilege in
// the POSIX C Run-time Environment" (Davis et al., ASPLOS 2019).
//
// It bundles a CHERI-extended CPU simulator with a cycle model and cache
// hierarchy, a CheriBSD-flavoured kernel supporting both the legacy mips64
// ABI and CheriABI, a MiniC compiler with legacy / pure-capability /
// AddressSanitizer backends, a run-time linker, and a C runtime — enough
// of the paper's stack to regenerate every table and figure in its
// evaluation. DESIGN.md describes the simulator internals (including the
// decoded-instruction cache and its invalidation protocol); bench_test.go
// maps each benchmark to its table or figure.
//
// Quick start:
//
//	sys := cheriabi.NewSystem(cheriabi.Config{})
//	img, _, err := cheriabi.Compile(cheriabi.CompileOptions{
//	    Name: "hello", ABI: cheriabi.ABICheri,
//	}, `int main() { printf("hello\n"); return 0; }`)
//	...
//	res, err := sys.RunImage(img, "hello")
//	fmt.Print(res.Output)
package cheriabi

import (
	"fmt"
	"io"

	"cheriabi/internal/cap"
	"cheriabi/internal/cc"
	"cheriabi/internal/cpu"
	"cheriabi/internal/image"
	"cheriabi/internal/isa"
	"cheriabi/internal/kernel"
	"cheriabi/internal/libc"
)

// ABI selects the process ABI.
type ABI = image.ABI

// Process ABIs.
const (
	// ABILegacy is the mips64 SysV ABI: pointers are 64-bit integers
	// checked only against the default data capability.
	ABILegacy = image.ABILegacy
	// ABICheri is CheriABI: every pointer is a bounded capability and DDC
	// is NULL.
	ABICheri = image.ABICheri
)

// Image is a compiled executable or shared library.
type Image = image.Image

// Finding is a compatibility-lint diagnostic in the paper's Table 2
// taxonomy.
type Finding = cc.Finding

// Stats are architectural event counts.
type Stats = cpu.Stats

// CompileOptions configure the MiniC compiler.
type CompileOptions struct {
	Name string
	ABI  ABI
	// Shared builds a library instead of an executable.
	Shared bool
	// ASan instruments the (legacy-ABI) build with AddressSanitizer-style
	// checks, the paper's software-only comparison baseline.
	ASan bool
	// NoBigCLC disables the large-immediate capability-load extension
	// (§5.2); used by the ablation benchmarks.
	NoBigCLC bool
	// SubObjectBounds enables the paper's §6 future-work extension:
	// capabilities to struct members are narrowed to the member. Catches
	// intra-object overflows at the cost of container_of-style idioms.
	SubObjectBounds bool
	// Needed lists shared-library dependencies by name.
	Needed []string
}

// Compile builds MiniC sources into an image, returning the image and the
// Table 2 lint findings.
func Compile(opt CompileOptions, sources ...string) (*Image, []Finding, error) {
	return cc.Compile(cc.Options{
		Name:            opt.Name,
		ABI:             opt.ABI,
		Shared:          opt.Shared,
		ASan:            opt.ASan,
		BigCLC:          !opt.NoBigCLC,
		SubObjectBounds: opt.SubObjectBounds,
		Needed:          opt.Needed,
	}, sources...)
}

// Lint runs only the compatibility analysis over sources for the given
// ABI, without requiring the program to be a complete executable.
func Lint(name string, abi ABI, sources ...string) ([]Finding, error) {
	_, findings, err := cc.Compile(cc.Options{Name: name, ABI: abi, Shared: true, BigCLC: true}, sources...)
	return findings, err
}

// Config configures a simulated machine.
type Config struct {
	// MemBytes is physical memory (default 256 MiB).
	MemBytes uint64
	// Seed perturbs layout (ASLR-style variance across runs).
	Seed int64
	// UrandomSeed seeds the deterministic /dev/urandom stream; zero
	// derives it from Seed, so equal-seed boots read identical bytes.
	UrandomSeed uint64
	// Console mirrors all process output when non-nil.
	Console io.Writer
	// Cap256 selects the uncompressed 256-bit capability format.
	Cap256 bool
	// Tracer observes user-code capability derivations (Figure 5).
	Tracer cpu.CapTracer
	// OnCapCreate observes kernel/linker/allocator-created capabilities.
	OnCapCreate func(label string, c cap.Capability)
	// DisableDecodeCache turns off the simulator's decoded-instruction
	// cache. Results are bit-identical either way (the differential
	// determinism suite enforces this); the knob exists for the ablation
	// benchmarks and as a safety hatch.
	DisableDecodeCache bool
	// DisableThreadedDispatch turns off the simulator's block-threaded
	// execution engine, falling back to one Step per instruction. Results
	// are bit-identical either way (the differential determinism suite
	// runs the full {decode cache, threaded dispatch, bulk fast path}
	// matrix); the knob exists for the ablation benchmarks and as a
	// safety hatch.
	DisableThreadedDispatch bool
	// DisableSuperblocks turns off superblock chaining: the threaded
	// engine then exits at every page boundary instead of following
	// direct branches and fallthrough block-to-block. Results are
	// bit-identical either way (same matrix); the knob exists for the
	// ablation benchmarks and as a safety hatch.
	DisableSuperblocks bool
	// DisableIndirectCache turns off the indirect-transfer target cache
	// and return-stack latch: every CJR/CJALR then exits the threaded
	// engine to the Step slow path instead of being served from a cached
	// capability proof. Results are bit-identical either way (same
	// matrix); the knob exists for the ablation benchmarks and as a
	// safety hatch.
	DisableIndirectCache bool
	// DisableBulkFastPath forces byte-at-a-time movement in the uaccess
	// subsystem's kernel/runtime bulk copies. Results are bit-identical
	// either way (same matrix); the knob exists for the ablation
	// benchmarks and as a safety hatch.
	DisableBulkFastPath bool
	// OnTrap observes every trap the CPU delivers, in program order
	// (used by the differential determinism suite).
	OnTrap func(*cpu.Trap)
}

// System is a booted machine: hardware, kernel, and C runtime.
type System struct {
	Machine *kernel.Machine
	Kernel  *kernel.Kernel
	Runtime *libc.Runtime
}

// NewSystem boots a machine.
func NewSystem(cfg Config) *System {
	format := cap.Format128
	if cfg.Cap256 {
		format = cap.Format256
	}
	m := kernel.NewMachine(kernel.Config{
		MemBytes:                cfg.MemBytes,
		Format:                  format,
		Seed:                    cfg.Seed,
		UrandomSeed:             cfg.UrandomSeed,
		Console:                 cfg.Console,
		Tracer:                  cfg.Tracer,
		DisableDecodeCache:      cfg.DisableDecodeCache,
		DisableThreadedDispatch: cfg.DisableThreadedDispatch,
		DisableSuperblocks:      cfg.DisableSuperblocks,
		DisableIndirectCache:    cfg.DisableIndirectCache,
		DisableBulkFastPath:     cfg.DisableBulkFastPath,
		OnTrap:                  cfg.OnTrap,
	})
	if cfg.OnCapCreate != nil {
		m.Kern.OnCapCreate = cfg.OnCapCreate
	}
	rt := libc.Install(m.Kern)
	return &System{Machine: m, Kernel: m.Kern, Runtime: rt}
}

// Snapshot is an immutable post-boot machine image. Clone stamps out
// fresh booted Systems from it in O(touched pages) — physical memory is
// shared copy-on-write at 1 MiB chunk granularity, kernel tables are
// deep-copied — instead of paying full kernel boot per machine. Any
// number of goroutines may Clone the same Snapshot concurrently; the
// evaluation fleet runners stamp one clone per sweep row.
type Snapshot struct {
	ms *kernel.MachineSnapshot
}

// Snapshot captures the booted machine for cloning. The machine must be
// quiescent: freshly booted, or with every spawned process run to
// completion and reaped. A cloned boot from a Seed-0 template is
// bit-identical to a cold NewSystem boot with the clone's Config — the
// differential suite's TestSnapshotCloneDifferential enforces this across
// the full {decode cache, threaded dispatch, bulk copy} matrix.
func (s *System) Snapshot() (*Snapshot, error) {
	ms, err := s.Machine.Snapshot()
	if err != nil {
		return nil, err
	}
	return &Snapshot{ms: ms}, nil
}

// Clone boots a fresh System from the snapshot. cfg.MemBytes and
// cfg.Cap256 are fixed by the snapshot and ignored; the seed, urandom,
// console, tracers, ablation knobs, and trap observer apply to the clone
// exactly as they would to NewSystem.
func (s *Snapshot) Clone(cfg Config) *System {
	m := s.ms.Boot(kernel.Config{
		Seed:                    cfg.Seed,
		UrandomSeed:             cfg.UrandomSeed,
		Console:                 cfg.Console,
		Tracer:                  cfg.Tracer,
		DisableDecodeCache:      cfg.DisableDecodeCache,
		DisableThreadedDispatch: cfg.DisableThreadedDispatch,
		DisableSuperblocks:      cfg.DisableSuperblocks,
		DisableIndirectCache:    cfg.DisableIndirectCache,
		DisableBulkFastPath:     cfg.DisableBulkFastPath,
		OnTrap:                  cfg.OnTrap,
	})
	if cfg.OnCapCreate != nil {
		m.Kern.OnCapCreate = cfg.OnCapCreate
	}
	rt := libc.Install(m.Kern)
	return &System{Machine: m, Kernel: m.Kern, Runtime: rt}
}

// Install places an image in the VFS: executables under /bin, libraries
// under /lib.
func (s *System) Install(img *Image) (string, error) {
	b, err := img.Marshal()
	if err != nil {
		return "", err
	}
	path := "/bin/" + img.Name
	if img.Entry == "" {
		path = "/lib/" + img.Name
	}
	if err := s.Kernel.FS.WriteFile(path, b); err != nil {
		return "", err
	}
	return path, nil
}

// RunResult reports a finished process.
type RunResult struct {
	ExitCode int // -1 if killed by a signal
	Signal   int // terminating signal, 0 for normal exit
	Output   string
	Stats    Stats // machine-wide deltas for the run
}

// RunImage installs img and runs it to completion with the given argv.
func (s *System) RunImage(img *Image, argv ...string) (*RunResult, error) {
	path, err := s.Install(img)
	if err != nil {
		return nil, err
	}
	return s.RunPath(path, argv...)
}

// RunPath runs an installed executable to completion.
func (s *System) RunPath(path string, argv ...string) (*RunResult, error) {
	if len(argv) == 0 {
		argv = []string{path}
	}
	before := s.Machine.CPU.Stats
	p, err := s.Kernel.Spawn(path, argv, nil)
	if err != nil {
		return nil, err
	}
	if err := s.Kernel.RunUntilExit(p, 0); err != nil {
		return nil, fmt.Errorf("cheriabi: %w (output so far: %q)", err, p.Stdout.String())
	}
	after := s.Machine.CPU.Stats
	res := &RunResult{
		ExitCode: p.ExitCode(),
		Signal:   p.TermSignal(),
		Output:   p.Stdout.String(),
		Stats:    deltaStats(before, after),
	}
	s.Kernel.Reap(p)
	return res, nil
}

// DeltaStats subtracts two Stats snapshots field-wise (b - a); fleet
// runners use it to report per-machine deltas.
func DeltaStats(a, b Stats) Stats { return deltaStats(a, b) }

func deltaStats(a, b Stats) Stats {
	return Stats{
		Instructions: b.Instructions - a.Instructions,
		Cycles:       b.Cycles - a.Cycles,
		Loads:        b.Loads - a.Loads,
		Stores:       b.Stores - a.Stores,
		CapLoads:     b.CapLoads - a.CapLoads,
		CapStores:    b.CapStores - a.CapStores,
		Branches:     b.Branches - a.Branches,
		Taken:        b.Taken - a.Taken,
		Syscalls:     b.Syscalls - a.Syscalls,
	}
}

// L2Misses returns the machine's cumulative L2 miss count.
func (s *System) L2Misses() uint64 { return s.Machine.Hier.L2.Stats().Misses }

// DecodeCacheStats reports the simulator's decoded-instruction-cache
// event counts (non-architectural). With the cache disabled, Hits,
// Misses, and Decodes stay zero; every fetch instead counts in Disabled
// (so ablation reports never conflate "cache off" with "latch invalid"),
// and Flushes still counts every explicit sync.
func (s *System) DecodeCacheStats() cpu.DecodeStats { return s.Machine.CPU.DecodeStats }

// InstSize is the size of one instruction, exported for code-size metrics.
const InstSize = isa.InstSize
