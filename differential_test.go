// Differential determinism suite: every benchmark and test-suite program
// is run twice, decoded-instruction cache on and off, and must produce
// bit-identical architectural results — Stats (instructions, cycles,
// loads/stores, branches, syscalls), program output, exit status, and the
// exact sequence of traps the CPU delivered. This is the proof obligation
// for the fetch fast path: cycle counts and fault behaviour are this
// repository's *results* (Figure 4, Tables 1–3), so a simulator
// optimisation must be observation-equivalent, not just "mostly right".
package cheriabi_test

import (
	"fmt"
	"hash/fnv"
	"io"
	"sort"
	"testing"

	"cheriabi"
	"cheriabi/internal/cpu"
	"cheriabi/internal/testsuite"
	"cheriabi/internal/workload"
)

// diffCase is one program to run under both cache modes.
type diffCase struct {
	name string
	src  string
	libs map[string]string
	abi  cheriabi.ABI
	args []string
}

// diffRecord captures everything a run can observe.
type diffRecord struct {
	exit     int
	signal   int
	output   string
	stats    cheriabi.Stats
	l2Misses uint64
	traps    uint64 // number of traps delivered
	trapHash uint64 // FNV-1a over the rendered trap sequence
}

// runCase executes one case on a fresh machine with the given cache mode,
// recording the full trap sequence through the OnTrap hook.
func runCase(t *testing.T, tc diffCase, disable bool) diffRecord {
	t.Helper()
	h := fnv.New64a()
	var traps uint64
	sys := cheriabi.NewSystem(cheriabi.Config{
		MemBytes:           128 << 20,
		DisableDecodeCache: disable,
		OnTrap: func(tr *cpu.Trap) {
			traps++
			io.WriteString(h, tr.Error())
		},
	})
	var needed []string
	for name := range tc.libs {
		needed = append(needed, name)
	}
	sort.Strings(needed)
	for _, name := range needed {
		lib, _, err := cheriabi.Compile(cheriabi.CompileOptions{Name: name, ABI: tc.abi, Shared: true}, tc.libs[name])
		if err != nil {
			t.Fatalf("%s: compiling %s: %v", tc.name, name, err)
		}
		if _, err := sys.Install(lib); err != nil {
			t.Fatal(err)
		}
	}
	img, _, err := cheriabi.Compile(cheriabi.CompileOptions{Name: tc.name, ABI: tc.abi, Needed: needed}, tc.src)
	if err != nil {
		t.Fatalf("%s: compile: %v", tc.name, err)
	}
	res, err := sys.RunImage(img, append([]string{tc.name}, tc.args...)...)
	if err != nil {
		t.Fatalf("%s (cache disabled=%v): %v", tc.name, disable, err)
	}
	if !disable && sys.DecodeCacheStats().Hits == 0 {
		t.Fatalf("%s: decode cache never hit; the differential run is vacuous", tc.name)
	}
	if disable && sys.DecodeCacheStats().Hits != 0 {
		t.Fatalf("%s: decode cache hit while disabled", tc.name)
	}
	return diffRecord{
		exit:     res.ExitCode,
		signal:   res.Signal,
		output:   res.Output,
		stats:    res.Stats,
		l2Misses: sys.L2Misses(),
		traps:    traps,
		trapHash: h.Sum64(),
	}
}

// corpus assembles the differential corpus: the full Figure 4 workload set
// and every test-suite program, under both ABIs. In -short mode it is cut
// to a representative subset.
func corpus(short bool) []diffCase {
	var out []diffCase
	workloads := workload.Figure4
	if short {
		workloads = workload.ShortCorpus()
	}
	abis := []struct {
		label string
		abi   cheriabi.ABI
	}{
		{"mips64", cheriabi.ABILegacy},
		{"cheriabi", cheriabi.ABICheri},
	}
	for _, w := range workloads {
		for _, a := range abis {
			out = append(out, diffCase{
				name: fmt.Sprintf("%s-%s", w.Name, a.label),
				src:  w.Src, libs: w.Libs, abi: a.abi, args: w.Args,
			})
		}
	}
	for _, s := range testsuite.Suites {
		names := make([]string, 0, len(s.Programs))
		for name := range s.Programs {
			names = append(names, name)
		}
		sort.Strings(names)
		if short && len(names) > 1 {
			names = names[:1]
		}
		for _, name := range names {
			for _, a := range abis {
				out = append(out, diffCase{
					name: fmt.Sprintf("%s-%s", name, a.label),
					src:  s.Programs[name], abi: a.abi,
				})
			}
		}
	}
	return out
}

// TestDecodeCacheDifferential is the determinism gate: cache on and cache
// off must be indistinguishable across the whole corpus.
func TestDecodeCacheDifferential(t *testing.T) {
	for _, tc := range corpus(testing.Short()) {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			on := runCase(t, tc, false)
			off := runCase(t, tc, true)
			if on.stats != off.stats {
				t.Errorf("Stats diverged:\n on: %+v\noff: %+v", on.stats, off.stats)
			}
			if on.output != off.output {
				t.Errorf("output diverged:\n on: %q\noff: %q", on.output, off.output)
			}
			if on.exit != off.exit || on.signal != off.signal {
				t.Errorf("termination diverged: on exit=%d sig=%d, off exit=%d sig=%d",
					on.exit, on.signal, off.exit, off.signal)
			}
			if on.traps != off.traps || on.trapHash != off.trapHash {
				t.Errorf("trap sequence diverged: on %d traps (hash %x), off %d traps (hash %x)",
					on.traps, on.trapHash, off.traps, off.trapHash)
			}
			if on.l2Misses != off.l2Misses {
				t.Errorf("L2 misses diverged: on %d, off %d", on.l2Misses, off.l2Misses)
			}
		})
	}
}

// TestDecodeCacheDeterministicAcrossRuns re-runs one cache-on workload and
// requires run-to-run determinism (the cache must not introduce any
// host-dependent variation).
func TestDecodeCacheDeterministicAcrossRuns(t *testing.T) {
	w, _ := workload.ByName("auto-qsort")
	first, err := workload.Run(w, workload.BuildOptions{ABI: cheriabi.ABICheri}, 3)
	if err != nil {
		t.Fatal(err)
	}
	second, err := workload.Run(w, workload.BuildOptions{ABI: cheriabi.ABICheri}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Fatalf("same-seed runs diverged:\n1: %+v\n2: %+v", first, second)
	}
}
