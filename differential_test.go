// Differential determinism suite: every benchmark, test-suite, and bodiag
// program is run under all ten simulator fast-path configurations —
// {decoded-instruction cache, block-threaded dispatch, superblock
// chaining, uaccess bulk-copy fast path} — and must
// produce bit-identical architectural results: Stats (instructions,
// cycles, loads/stores, branches, syscalls), program output, exit status,
// L2 miss counts, and the exact sequence of traps the CPU delivered. This
// is the proof obligation for the fast paths: cycle counts and fault
// behaviour are this repository's *results* (Figure 4, Tables 1–3), so a
// simulator optimisation must be observation-equivalent, not just "mostly
// right".
package cheriabi_test

import (
	"fmt"
	"hash"
	"hash/fnv"
	"io"
	"sort"
	"strings"
	"testing"

	"cheriabi"
	"cheriabi/internal/bodiag"
	"cheriabi/internal/cpu"
	"cheriabi/internal/testsuite"
	"cheriabi/internal/workload"
)

// simConfig is one simulator fast-path configuration.
type simConfig struct {
	name     string
	decode   bool // decoded-instruction cache enabled
	threaded bool // block-threaded dispatch enabled
	super    bool // superblock chaining enabled (needs decode+threaded)
	indirect bool // indirect-transfer target cache enabled (needs threaded)
	bulk     bool // uaccess bulk-copy fast path enabled
}

// simConfigs is the full ablation matrix: {decode cache, threaded
// dispatch} crossed with the uaccess bulk-copy fast path. Threaded
// dispatch executes out of decoded blocks, so threaded-without-cache
// degenerates to the plain interpreter — it is still exercised to prove
// the degenerate path is sound. The superblock and indirect-transfer
// dimensions are each ablated separately against the all-on threaded
// configuration. The first entry (everything off) is the reference
// byte-at-a-time interpreter every other configuration must be
// indistinguishable from.
var simConfigs = func() []simConfig {
	base := []simConfig{
		{"plain", false, false, false, false, false},
		{"cache", true, false, false, false, false},
		{"cache+threaded", true, true, true, true, false},
		{"cache+threaded-nosuper", true, true, false, true, false},
		{"cache+threaded-noindirect", true, true, true, false, false},
		{"threaded-sans-cache", false, true, false, false, false},
	}
	out := make([]simConfig, 0, 2*len(base))
	for _, c := range base {
		fast := c
		fast.name += "+bulkcopy"
		fast.bulk = true
		out = append(out, c, fast)
	}
	return out
}()

// diffCase is one program to run under every simulator configuration.
type diffCase struct {
	name string
	src  string
	libs map[string]string
	abi  cheriabi.ABI
	args []string
	// mayTrap marks programs whose faulting is the point (bodiag corpus):
	// they are allowed to die on a signal or exit non-zero, and the
	// differential comparison of that outcome is exactly the test.
	mayTrap bool
	// chains marks programs whose code provably straddles page boundaries
	// on the hot path, so superblock configurations must actually chain
	// (the vacuousness check for the superblock dimension). Most guest
	// programs compile into one or two code pages with every cross-page
	// transfer a CJR/CJALR, which by design exits the block instead of
	// chaining, so the positive check is opt-in per case.
	chains bool
	// indirects marks programs whose hot path provably repeats CJR/CJALR
	// transfers under threaded dispatch, so indirect-cache configurations
	// must actually hit (the vacuousness check for the indirect-transfer
	// dimension). Only CheriABI code issues capability jumps — the legacy
	// ABI calls through integer JR/JALR — so the positive check is opt-in
	// per case like chains.
	indirects bool
}

// diffRecord captures everything a run can observe.
type diffRecord struct {
	exit     int
	signal   int
	output   string
	stats    cheriabi.Stats
	l2Misses uint64
	traps    uint64 // number of traps delivered
	trapHash uint64 // FNV-1a over the rendered trap sequence
}

// diffConfig is the machine Config for one fast-path configuration; the
// trap observer feeds the (traps, hash) cells of the returned record.
func diffConfig(cfg simConfig, traps *uint64, h io.Writer) cheriabi.Config {
	return cheriabi.Config{
		MemBytes:                128 << 20,
		DisableDecodeCache:      !cfg.decode,
		DisableThreadedDispatch: !cfg.threaded,
		DisableSuperblocks:      !cfg.super,
		DisableIndirectCache:    !cfg.indirect,
		DisableBulkFastPath:     !cfg.bulk,
		OnTrap: func(tr *cpu.Trap) {
			*traps++
			io.WriteString(h, tr.Error())
		},
	}
}

// runCase executes one case on a cold-booted machine with the given
// fast-path configuration, recording the full trap sequence through the
// OnTrap hook.
func runCase(t *testing.T, tc diffCase, cfg simConfig) diffRecord {
	t.Helper()
	h := fnv.New64a()
	var traps uint64
	sys := cheriabi.NewSystem(diffConfig(cfg, &traps, h))
	sys.Kernel.FS.Mkdir(bodiag.CwdPath) // the bodiag getcwd case chdirs here
	return runCaseOn(t, sys, tc, cfg, &traps, h)
}

// runCaseOn executes one case on the given machine (cold boot or snapshot
// clone) and records everything a run can observe.
func runCaseOn(t *testing.T, sys *cheriabi.System, tc diffCase, cfg simConfig, traps *uint64, h hash.Hash64) diffRecord {
	t.Helper()
	var needed []string
	for name := range tc.libs {
		needed = append(needed, name)
	}
	sort.Strings(needed)
	for _, name := range needed {
		lib, _, err := cheriabi.Compile(cheriabi.CompileOptions{Name: name, ABI: tc.abi, Shared: true}, tc.libs[name])
		if err != nil {
			t.Fatalf("%s: compiling %s: %v", tc.name, name, err)
		}
		if _, err := sys.Install(lib); err != nil {
			t.Fatal(err)
		}
	}
	img, _, err := cheriabi.Compile(cheriabi.CompileOptions{Name: tc.name, ABI: tc.abi, Needed: needed}, tc.src)
	if err != nil {
		t.Fatalf("%s: compile: %v", tc.name, err)
	}
	res, err := sys.RunImage(img, append([]string{tc.name}, tc.args...)...)
	if err != nil {
		t.Fatalf("%s (%s): %v", tc.name, cfg.name, err)
	}
	ds := sys.DecodeCacheStats()
	if cfg.decode && ds.Hits == 0 {
		t.Fatalf("%s: decode cache never hit; the differential run is vacuous", tc.name)
	}
	if !cfg.decode && ds.Hits != 0 {
		t.Fatalf("%s: decode cache hit while disabled", tc.name)
	}
	if cfg.decode && cfg.threaded && ds.Threaded == 0 {
		t.Fatalf("%s: threaded dispatch never ran; the differential run is vacuous", tc.name)
	}
	if !(cfg.decode && cfg.threaded) && ds.Threaded != 0 {
		t.Fatalf("%s: threaded dispatch ran while disabled (%+v)", tc.name, ds)
	}
	if cfg.super && tc.chains && ds.Chains == 0 {
		t.Fatalf("%s: superblock chaining never ran; the differential run is vacuous", tc.name)
	}
	if !cfg.super && ds.Chains != 0 {
		t.Fatalf("%s: superblock chaining ran while disabled (%+v)", tc.name, ds)
	}
	if cfg.indirect && tc.indirects && ds.IndirectHits == 0 {
		t.Fatalf("%s: indirect-transfer cache never hit; the differential run is vacuous", tc.name)
	}
	if !cfg.indirect && ds.IndirectHits != 0 {
		t.Fatalf("%s: indirect-transfer cache hit while disabled (%+v)", tc.name, ds)
	}
	us := sys.Machine.UA.Stats
	if cfg.bulk && us.SlowRuns != 0 {
		t.Fatalf("%s: uaccess slow path ran with the bulk fast path enabled (%+v)", tc.name, us)
	}
	if !cfg.bulk && us.FastRuns != 0 {
		t.Fatalf("%s: uaccess bulk fast path ran while disabled (%+v)", tc.name, us)
	}
	return diffRecord{
		exit:     res.ExitCode,
		signal:   res.Signal,
		output:   res.Output,
		stats:    res.Stats,
		l2Misses: sys.L2Misses(),
		traps:    *traps,
		trapHash: h.Sum64(),
	}
}

// compare runs tc under every configuration and requires each to be
// indistinguishable from the plain interpreter.
func compare(t *testing.T, tc diffCase) {
	t.Helper()
	base := runCase(t, tc, simConfigs[0])
	if !tc.mayTrap && (base.signal != 0 || base.exit != 0) {
		// Not a differential failure, but a corpus bug worth surfacing.
		t.Fatalf("baseline run misbehaved: exit=%d signal=%d output=%q", base.exit, base.signal, base.output)
	}
	for _, cfg := range simConfigs[1:] {
		got := runCase(t, tc, cfg)
		if got.stats != base.stats {
			t.Errorf("%s: Stats diverged:\n %s: %+v\nplain: %+v", cfg.name, cfg.name, got.stats, base.stats)
		}
		if got.output != base.output {
			t.Errorf("%s: output diverged:\n %s: %q\nplain: %q", cfg.name, cfg.name, got.output, base.output)
		}
		if got.exit != base.exit || got.signal != base.signal {
			t.Errorf("%s: termination diverged: %s exit=%d sig=%d, plain exit=%d sig=%d",
				cfg.name, cfg.name, got.exit, got.signal, base.exit, base.signal)
		}
		if got.traps != base.traps || got.trapHash != base.trapHash {
			t.Errorf("%s: trap sequence diverged: %s %d traps (hash %x), plain %d traps (hash %x)",
				cfg.name, cfg.name, got.traps, got.trapHash, base.traps, base.trapHash)
		}
		if got.l2Misses != base.l2Misses {
			t.Errorf("%s: L2 misses diverged: %s %d, plain %d", cfg.name, cfg.name, got.l2Misses, base.l2Misses)
		}
	}
}

var diffABIs = []struct {
	label string
	abi   cheriabi.ABI
}{
	{"mips64", cheriabi.ABILegacy},
	{"cheriabi", cheriabi.ABICheri},
}

// corpus assembles the workload + test-suite differential corpus: the full
// Figure 4 workload set and every test-suite program, under both ABIs. In
// -short mode it is cut to a representative subset.
func corpus(short bool) []diffCase {
	var out []diffCase
	workloads := workload.Figure4
	if short {
		workloads = workload.ShortCorpus()
	}
	for _, w := range workloads {
		for _, a := range diffABIs {
			out = append(out, diffCase{
				name: fmt.Sprintf("%s-%s", w.Name, a.label),
				src:  w.Src, libs: w.Libs, abi: a.abi, args: w.Args,
			})
		}
	}
	// A synthetic case whose main loop body spans several code pages: the
	// backward loop branch and the straight-line fallthrough both cross
	// page boundaries on every iteration, so the superblock configurations
	// must chain (and are checked to, via diffCase.chains) under both ABIs
	// and both directions, with a helper call (CJR exit) breaking the chain
	// mid-loop.
	for _, a := range diffABIs {
		out = append(out, diffCase{
			name:   fmt.Sprintf("superblock-straddle-%s", a.label),
			src:    straddleSrc(),
			abi:    a.abi,
			chains: true,
			// The straddle loop calls a helper every iteration; under
			// CheriABI those calls and returns are CJR/CJALR, so the
			// indirect-transfer cache must serve repeats.
			indirects: a.abi == cheriabi.ABICheri,
		})
	}
	for _, s := range testsuite.Suites {
		names := make([]string, 0, len(s.Programs))
		for name := range s.Programs {
			names = append(names, name)
		}
		sort.Strings(names)
		if short && len(names) > 1 {
			names = names[:1]
		}
		for _, name := range names {
			for _, a := range diffABIs {
				out = append(out, diffCase{
					name: fmt.Sprintf("%s-%s", name, a.label),
					src:  s.Programs[name], abi: a.abi,
					// Suite programs may legitimately crash under CheriABI
					// (Table 1 counts exactly that); the differential
					// comparison of the crash is the test.
					mayTrap: true,
				})
			}
		}
	}
	return out
}

// straddleSrc generates a program whose loop body unrolls to well over a
// page of instructions, guaranteeing cross-page fallthrough and a
// cross-page backward branch each iteration.
func straddleSrc() string {
	var b strings.Builder
	b.WriteString("int bump(int x) { return x + 1; }\n")
	b.WriteString("int main() {\n  int s = 0;\n  for (int i = 0; i < 40; i++) {\n")
	for j := 0; j < 1200; j++ {
		b.WriteString("    s += i;\n")
		if j%400 == 0 {
			b.WriteString("    s = bump(s);\n")
		}
	}
	b.WriteString("  }\n  printf(\"%d\\n\", s);\n  return 0;\n}\n")
	return b.String()
}

// bodiagCorpus assembles the bodiag differential corpus: overflow programs
// whose *faulting behaviour* (trap kind, faulting PC, signal) is the
// observable under test. In -short mode a strided subset with the min and
// ok variants runs; the full mode covers every case and every variant.
func bodiagCorpus(short bool) []diffCase {
	cases := bodiag.Generate()
	variants := []bodiag.Variant{bodiag.VarOK, bodiag.VarMin, bodiag.VarMed, bodiag.VarLarge}
	stride := 1
	if short {
		stride = 24
		variants = []bodiag.Variant{bodiag.VarOK, bodiag.VarMin}
	}
	var out []diffCase
	for i := 0; i < len(cases); i += stride {
		c := cases[i]
		for _, v := range variants {
			for _, a := range diffABIs {
				out = append(out, diffCase{
					name:    fmt.Sprintf("%s-%s-%s", c.Name(), v, a.label),
					src:     bodiag.Source(c, v),
					abi:     a.abi,
					mayTrap: true,
				})
			}
		}
	}
	return out
}

// TestDifferentialMatrix is the determinism gate for the workload and
// test-suite corpora: every fast-path configuration in the
// {decode cache × threaded dispatch × superblocks × bulk copy} matrix
// must be indistinguishable across every program and both ABIs.
func TestDifferentialMatrix(t *testing.T) {
	for _, tc := range corpus(testing.Short()) {
		tc := tc
		t.Run(tc.name, func(t *testing.T) { compare(t, tc) })
	}
}

// TestBodiagDifferential extends the determinism gate to the bodiag
// corpus: buffer-overflow programs that fault on purpose, so the exact
// trap kind, trap sequence, and termination signal are compared across
// every configuration (an optimisation that altered *where or how* a
// violation traps would corrupt Table 3).
func TestBodiagDifferential(t *testing.T) {
	for _, tc := range bodiagCorpus(testing.Short()) {
		tc := tc
		t.Run(tc.name, func(t *testing.T) { compare(t, tc) })
	}
}

// TestSnapshotCloneDifferential is the determinism gate for machine
// snapshot/clone: for each case, a machine cloned from a shared post-boot
// snapshot must be bit-identical — output, Stats, termination, trap
// sequence, L2 misses — to a cold NewSystem boot, under every fast-path
// configuration in the {decode cache × threaded dispatch × superblocks
// × bulk copy} matrix. One plain-boot template serves all ten
// configurations: the
// knobs, like the seed, are clone-time Config fields. The corpora are the
// short workload + test-suite and bodiag sets under both ABIs (strided
// further in -short mode).
func TestSnapshotCloneDifferential(t *testing.T) {
	template := cheriabi.NewSystem(cheriabi.Config{MemBytes: 128 << 20})
	template.Kernel.FS.Mkdir(bodiag.CwdPath)
	snap, err := template.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	// The timed-wait row is pinned at index 0 so it runs whatever the
	// stride: a clone must stay bit-identical to a cold boot when the
	// workload sleeps — the snapshot restores the clock offset, so every
	// virtual timestamp the guest reads matches.
	tw, ok := workload.ByName("posix-timers")
	if !ok {
		t.Fatal("posix-timers workload missing")
	}
	cases := append([]diffCase{{name: "timed-wait-cheriabi", src: tw.Src, abi: cheriabi.ABICheri}},
		append(corpus(true), bodiagCorpus(true)...)...)
	stride := 1
	if testing.Short() {
		stride = 5
	}
	for i := 0; i < len(cases); i += stride {
		tc := cases[i]
		t.Run(tc.name, func(t *testing.T) {
			cold := runCase(t, tc, simConfigs[0])
			for _, cfg := range simConfigs {
				h := fnv.New64a()
				var traps uint64
				sys := snap.Clone(diffConfig(cfg, &traps, h))
				got := runCaseOn(t, sys, tc, cfg, &traps, h)
				if got != cold {
					t.Errorf("clone(%s) diverged from cold boot:\nclone: %+v\n cold: %+v", cfg.name, got, cold)
				}
			}
		})
	}
}

// TestSnapshotRequiresQuiescence: capturing a machine with a live process
// must be refused — in-flight CPU context, wait queues, and address
// spaces are not checkpointable state — and must succeed again once the
// process is run to completion and reaped.
func TestSnapshotRequiresQuiescence(t *testing.T) {
	img, _, err := cheriabi.Compile(cheriabi.CompileOptions{Name: "quiet", ABI: cheriabi.ABICheri},
		`int main() { return 0; }`)
	if err != nil {
		t.Fatal(err)
	}
	sys := cheriabi.NewSystem(cheriabi.Config{MemBytes: 64 << 20})
	path, err := sys.Install(img)
	if err != nil {
		t.Fatal(err)
	}
	p, err := sys.Kernel.Spawn(path, []string{"quiet"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Snapshot(); err == nil {
		t.Fatal("snapshot of a machine with a live process must fail")
	}
	if err := sys.Kernel.RunUntilExit(p, 0); err != nil {
		t.Fatal(err)
	}
	sys.Kernel.Reap(p)
	if _, err := sys.Snapshot(); err != nil {
		t.Fatalf("snapshot after reap: %v", err)
	}

	// A pending timer is likewise non-checkpointable state: a guest parked
	// mid-sleep must be refused — by the timer check specifically, since
	// the deadline heap references live thread state a clone cannot carry.
	img, _, err = cheriabi.Compile(cheriabi.CompileOptions{Name: "dozer", ABI: cheriabi.ABICheri},
		`int main() { poll(0, 0, 50); return 0; }`)
	if err != nil {
		t.Fatal(err)
	}
	path, err = sys.Install(img)
	if err != nil {
		t.Fatal(err)
	}
	p, err = sys.Kernel.Spawn(path, []string{"dozer"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Kernel.Run(0, func() bool { return sys.Kernel.PendingTimers() > 0 }); err != nil {
		t.Fatal(err)
	}
	if sys.Kernel.PendingTimers() == 0 {
		t.Fatal("guest never armed a timer")
	}
	_, err = sys.Snapshot()
	if err == nil || !strings.Contains(err.Error(), "pending timers") {
		t.Fatalf("snapshot with a pending timer must fail with the timer reason, got: %v", err)
	}
	if err := sys.Kernel.RunUntilExit(p, 0); err != nil {
		t.Fatal(err)
	}
	sys.Kernel.Reap(p)
	if _, err := sys.Snapshot(); err != nil {
		t.Fatalf("snapshot after the sleeper drained: %v", err)
	}
}

// TestDecodeCacheDeterministicAcrossRuns re-runs one fully-optimised
// workload and requires run-to-run determinism (the fast paths must not
// introduce any host-dependent variation).
func TestDecodeCacheDeterministicAcrossRuns(t *testing.T) {
	w, _ := workload.ByName("auto-qsort")
	first, err := workload.Run(w, workload.BuildOptions{ABI: cheriabi.ABICheri}, 3)
	if err != nil {
		t.Fatal(err)
	}
	second, err := workload.Run(w, workload.BuildOptions{ABI: cheriabi.ABICheri}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Fatalf("same-seed runs diverged:\n1: %+v\n2: %+v", first, second)
	}
}
